package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrentQueries bounds query executions in flight at once —
	// the admission-control semaphore. Excess queries wait their turn
	// (closed-loop clients self-throttle; waiting counts toward the
	// request timeout). Default: 2 × GOMAXPROCS.
	MaxConcurrentQueries int
	// RequestTimeout caps the server-side execution time of any single
	// request, including admission wait (default 30s). A QueryRequest
	// may ask for less, never more.
	RequestTimeout time.Duration
	// MaxPipelinedRequests bounds requests in flight per connection
	// (default 64). When a client pipelines past the cap, the session
	// stops reading frames until a response drains — backpressure via
	// TCP, so one connection cannot accumulate unbounded handler
	// goroutines and payloads.
	MaxPipelinedRequests int
	// MaxFrame bounds a single wire frame (default MaxFrame const). A
	// hello handshake may negotiate it lower per connection. Single-frame
	// JSON results larger than this fail with frame_too_large; streamed
	// binary results are bounded per batch frame, not in total.
	MaxFrame int64
	// StreamWindow is the per-stream credit window offered to clients:
	// the number of un-acknowledged batch frames in flight per streamed
	// query (default DefaultStreamWindow). The handshake uses
	// min(client, server).
	StreamWindow int
	// StreamCompressMin is the raw batch size in bytes at which streamed
	// batches are flate-compressed (0 = default 4 KiB, negative = never —
	// useful on loopback where compression CPU exceeds the byte savings).
	StreamCompressMin int
	// OnQueryStart, when set, is invoked at the start of every query
	// execution while its admission slot is held — an instrumentation
	// hook (tests use it to make executions overlap deterministically).
	OnQueryStart func()
	// Logf receives connection-level diagnostics (default log.Printf).
	Logf func(format string, args ...any)
	// Registry receives the server's metrics: per-op latency histograms
	// and error counters, plus live connection/admission gauges. Nil
	// means a private registry; either way ServeOps exposes it over HTTP.
	Registry *obs.Registry
	// SlowQueryThreshold is the duration at which a completed query
	// enters the slow-query ring log, span tree included (the server
	// forces tracing on for logged-but-untraced queries and strips the
	// tree from the client's response). 0 = the 250ms default; negative
	// disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize is the slow-query ring's capacity (default 64).
	SlowQueryLogSize int
	// Peers, when set, supplies the deployment's advertised client
	// endpoints (this server's included) for the health and status ops —
	// the member list smart clients refresh from. Overrides the
	// backend-provided list.
	Peers func() []string
}

// defaultSlowQueryThreshold is the slow-query log's default threshold.
const defaultSlowQueryThreshold = 250 * time.Millisecond

// defaultSlowQueryLogSize is the slow-query ring's default capacity.
const defaultSlowQueryLogSize = 64

func (c Config) withDefaults() Config {
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxPipelinedRequests <= 0 {
		c.MaxPipelinedRequests = 64
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = MaxFrame
	}
	if c.MaxFrame > MaxFrameLimit {
		// The length header's high bit is the binary-frame tag: frames at
		// or past 2 GiB would corrupt the framing entirely.
		c.MaxFrame = MaxFrameLimit
	}
	if c.StreamWindow <= 0 {
		c.StreamWindow = DefaultStreamWindow
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = defaultSlowQueryThreshold
	}
	if c.SlowQueryLogSize <= 0 {
		c.SlowQueryLogSize = defaultSlowQueryLogSize
	}
	return c
}

// Server accepts wire-protocol sessions and dispatches them to a Backend.
type Server struct {
	cfg     Config
	backend Backend
	ln      net.Listener
	start   time.Time

	sem chan struct{} // admission-control slots for query execution

	inFlight   atomic.Int64
	peakFlight atomic.Int64
	conns      atomic.Int64
	totalConns atomic.Int64

	// draining flips at Shutdown: new work is refused with
	// CodeUnavailable while requests already in flight finish.
	draining atomic.Bool
	// reqsInFlight counts requests from frame-read to response-written
	// (streams: to End frame). Shutdown waits for it to reach zero.
	reqsInFlight atomic.Int64

	metrics *obs.Registry
	ops     map[string]*opMetrics
	slow    *slowLog

	// Streamed-execution accounting: first-batch latency (request start
	// to first batch frame on the wire) and rows/queries that ran on the
	// during-execution streaming path.
	firstBatch      *obs.Histogram
	streamedRows    *obs.Counter
	streamedQueries *obs.Counter

	mu      sync.Mutex
	active  map[net.Conn]struct{}
	opsLns  []net.Listener // ops HTTP listeners (ServeOps)
	closed  bool
	accepts sync.WaitGroup
}

// opMetrics are one operation's registry handles, resolved once at
// Start so the per-request path never touches the registry lock. The
// histogram's own count/sum/max replace the old ad-hoc opCounters.
type opMetrics struct {
	hist   *obs.Histogram
	errors *obs.Counter
}

// observeOp records one request's service time and outcome — the single
// accounting point shared by the JSON dispatch path, the binary stream
// path, and the inline hello handler.
func (s *Server) observeOp(op string, d time.Duration, failed bool) {
	m := s.ops[op]
	if m == nil {
		return
	}
	m.hist.Observe(d)
	if failed {
		m.errors.Inc()
	}
}

// slowLog is a fixed-capacity ring of the slowest-threshold-crossing
// queries, span trees included.
type slowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowQuery // ring storage, cap fixed
	next    int         // overwrite cursor once full
	dropped uint64      // entries overwritten
}

func newSlowLog(threshold time.Duration, capacity int) *slowLog {
	return &slowLog{threshold: threshold, entries: make([]SlowQuery, 0, capacity)}
}

func (l *slowLog) enabled() bool { return l.threshold > 0 }

func (l *slowLog) qualifies(d time.Duration) bool {
	return l.threshold > 0 && d >= l.threshold
}

func (l *slowLog) record(e SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < cap(l.entries) {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % len(l.entries)
	l.dropped++
}

// snapshot copies the ring oldest-first. withTraces strips the span
// trees (the status op's lightweight summary form).
func (l *slowLog) snapshot(withTraces bool) ([]SlowQuery, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	if !withTraces {
		for i := range out {
			out[i].Trace = nil
		}
	}
	return out, l.dropped
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// until Close.
func Start(addr string, backend Backend, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxConcurrentQueries),
		active:  make(map[net.Conn]struct{}),
		metrics: cfg.Registry,
		ops:     make(map[string]*opMetrics),
		slow:    newSlowLog(cfg.SlowQueryThreshold, cfg.SlowQueryLogSize),
	}
	for _, op := range []string{OpPing, OpCreate, OpPublish, OpQuery, OpSchema, OpStatus, OpHello, OpTrace, OpHealth} {
		s.ops[op] = &opMetrics{
			hist:   s.metrics.Histogram(`orchestra_op_duration_us{op="` + op + `"}`),
			errors: s.metrics.Counter(`orchestra_op_errors_total{op="` + op + `"}`),
		}
	}
	s.firstBatch = s.metrics.Histogram("orchestra_query_first_batch_us")
	s.streamedRows = s.metrics.Counter("orchestra_streamed_rows_total")
	s.streamedQueries = s.metrics.Counter("orchestra_streamed_queries_total")
	s.metrics.GaugeFunc("orchestra_connections", s.conns.Load)
	s.metrics.GaugeFunc("orchestra_connections_total", s.totalConns.Load)
	s.metrics.GaugeFunc("orchestra_in_flight_queries", s.inFlight.Load)
	s.metrics.GaugeFunc("orchestra_peak_in_flight_queries", s.peakFlight.Load)
	s.metrics.GaugeFunc("orchestra_uptime_seconds", func() int64 {
		return int64(time.Since(s.start).Seconds())
	})
	s.registerCacheGauges()
	s.registerReplGauges()
	s.accepts.Add(1)
	go s.acceptLoop()
	return s, nil
}

// registerCacheGauges exports the backend's cache counters (view cache,
// decoded-page LRU) as registry gauges when the backend provides them.
func (s *Server) registerCacheGauges() {
	prov, ok := s.backend.(CacheStatsProvider)
	if !ok {
		return
	}
	stat := func(name string, f func(engine.CacheStats) int64) func() int64 {
		return func() int64 { return f(prov.CacheStats()[name]) }
	}
	for _, name := range []string{"views", "pages"} {
		s.metrics.GaugeFunc(`orchestra_cache_hits{cache="`+name+`"}`, stat(name, func(c engine.CacheStats) int64 { return int64(c.Hits) }))
		s.metrics.GaugeFunc(`orchestra_cache_misses{cache="`+name+`"}`, stat(name, func(c engine.CacheStats) int64 { return int64(c.Misses) }))
		s.metrics.GaugeFunc(`orchestra_cache_evictions{cache="`+name+`"}`, stat(name, func(c engine.CacheStats) int64 { return int64(c.Evictions) }))
		s.metrics.GaugeFunc(`orchestra_cache_size{cache="`+name+`"}`, stat(name, func(c engine.CacheStats) int64 { return int64(c.Size) }))
	}
}

// registerReplGauges exports the backend's replica-repair health as
// registry gauges when the backend provides it: shipping lag, catch-up
// and state-transfer counters, and anti-entropy repairs.
func (s *Server) registerReplGauges() {
	prov, ok := s.backend.(ReplStatsProvider)
	if !ok {
		return
	}
	stat := func(f func(cluster.ReplStats) int64) func() int64 {
		return func() int64 {
			r, rok := prov.ReplStats()
			if !rok {
				return 0
			}
			return f(r)
		}
	}
	s.metrics.GaugeFunc("orchestra_repl_max_lag", stat(func(r cluster.ReplStats) int64 { return int64(r.MaxLag) }))
	s.metrics.GaugeFunc("orchestra_repl_catch_up_records_total", stat(func(r cluster.ReplStats) int64 { return int64(r.CatchUpRecords) }))
	s.metrics.GaugeFunc("orchestra_repl_state_transfers_total", stat(func(r cluster.ReplStats) int64 { return int64(r.StateTransfers) }))
	s.metrics.GaugeFunc("orchestra_repl_anti_entropy_repairs_total", stat(func(r cluster.ReplStats) int64 { return int64(r.AntiEntropyRepairs) }))
	s.metrics.GaugeFunc("orchestra_repl_last_catch_up_us", stat(func(r cluster.ReplStats) int64 { return r.LastCatchUpUs }))
}

// ServeOps starts an HTTP listener on addr ("host:port"; ":0" picks a
// free port) serving the ops endpoints off the server's registry:
// /metrics in Prometheus text format, /debug/vars, and /debug/pprof.
// The listener closes with the server. Returns the bound address.
func (s *Server) ServeOps(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("server: closed")
	}
	s.opsLns = append(s.opsLns, ln)
	s.mu.Unlock()
	h := obs.NewOpsHandler(s.metrics)
	go func() {
		_ = http.Serve(ln, h) // exits when the listener closes
	}()
	return ln.Addr(), nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Shutdown drains the server gracefully: it stops accepting new
// connections, refuses new queries and publishes with CodeUnavailable
// (answering health with "draining" so smart clients steer away), lets
// requests already in flight finish — streamed results included — and
// then closes every session. If ctx expires first, the remaining
// in-flight work is severed as by Close. Safe to call concurrently with
// Close; both are idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Stop accepting. Close() closes s.ln again; net.Listener.Close is
	// documented idempotent-safe (second close returns ErrClosed, which
	// Close ignores for its return only on the first path — acceptable).
	lnErr := s.ln.Close()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.reqsInFlight.Load() > 0 {
		select {
		case <-ctx.Done():
			_ = s.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
	if err := s.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	if lnErr != nil && !errors.Is(lnErr, net.ErrClosed) {
		return lnErr
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops accepting, severs all sessions, and waits for the accept
// loop to exit. In-flight request goroutines drain on their own.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.active))
	for c := range s.active {
		conns = append(conns, c)
	}
	opsLns := s.opsLns
	s.opsLns = nil
	s.mu.Unlock()
	for _, ln := range opsLns {
		ln.Close()
	}
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.accepts.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.accepts.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.active[conn] = struct{}{}
		s.mu.Unlock()
		s.conns.Add(1)
		s.totalConns.Add(1)
		go s.session(conn)
	}
}

// session owns one connection: it reads request frames and dispatches
// each to its own goroutine, so a slow query does not block later
// requests pipelined on the same connection. Responses are serialized
// by a per-connection write lock and carry the request's ID; streamed
// results interleave their frames with other responses under the same
// lock, one frame at a time.
type session struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader

	// ctx is canceled when the read loop exits, unblocking any stream
	// writers waiting on credit from a dead connection.
	ctx    context.Context
	cancel context.CancelFunc

	wmu sync.Mutex

	// lim holds the negotiated limits; swapped atomically by hello.
	lim atomic.Pointer[sessionLimits]

	smu     sync.Mutex
	streams map[uint64]*streamWriter // in-flight streams by request ID
}

// sessionLimits are the per-connection negotiated protocol settings.
type sessionLimits struct {
	binary   bool // FeatureBinaryStream negotiated
	maxFrame int64
	window   int
}

func (sess *session) limits() *sessionLimits { return sess.lim.Load() }

// write sends one pre-encoded frame under the write lock. On failure the
// connection is closed to wake the read loop.
func (sess *session) write(frame []byte) error {
	sess.wmu.Lock()
	_, err := sess.conn.Write(frame)
	sess.wmu.Unlock()
	if err != nil {
		if !errors.Is(err, net.ErrClosed) {
			sess.srv.cfg.Logf("server: %s: write: %v", sess.conn.RemoteAddr(), err)
		}
		sess.conn.Close()
	}
	return err
}

// writeResponse encodes and sends one JSON response, using the framing
// the connection negotiated and a pooled buffer.
func (sess *session) writeResponse(resp *Response) error {
	lim := sess.limits()
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	var frame []byte
	var err error
	if lim.binary {
		frame, err = AppendTaggedJSONFrame((*buf)[:0], resp, lim.maxFrame)
	} else {
		frame, err = AppendFrame((*buf)[:0], resp, lim.maxFrame)
	}
	if err != nil {
		// A result the codec cannot carry (NaN/Inf floats, or one larger
		// than the frame cap) fails only this request, not the session.
		code := CodeInternal
		var fse *FrameSizeError
		if errors.As(err, &fse) {
			code = CodeFrameTooLarge
		}
		fallback := &Response{ID: resp.ID, Error: Errorf(code, "encode response: %v", err)}
		if lim.binary {
			frame, err = AppendTaggedJSONFrame((*buf)[:0], fallback, lim.maxFrame)
		} else {
			frame, err = AppendFrame((*buf)[:0], fallback, lim.maxFrame)
		}
		if err != nil {
			sess.srv.cfg.Logf("server: %s: encode: %v", sess.conn.RemoteAddr(), err)
			sess.conn.Close()
			return err
		}
	}
	err = sess.write(frame)
	*buf = frame[:0]
	return err
}

// registerStream claims id for w; it fails when another stream on the
// session is still using the id (frames would be un-demultiplexable and
// the later dropStream would orphan the survivor's credits).
func (sess *session) registerStream(id uint64, w *streamWriter) bool {
	sess.smu.Lock()
	defer sess.smu.Unlock()
	if _, taken := sess.streams[id]; taken {
		return false
	}
	sess.streams[id] = w
	return true
}

func (sess *session) dropStream(id uint64) {
	sess.smu.Lock()
	delete(sess.streams, id)
	sess.smu.Unlock()
}

func (sess *session) creditStream(id uint64, n uint64) {
	sess.smu.Lock()
	w := sess.streams[id]
	sess.smu.Unlock()
	if w != nil {
		w.credit(n)
	}
}

// cancelStream aborts an in-flight stream on a client's FrameCancel. A
// cancel for an id with no registered stream is dropped — the protocol
// only permits cancelling after the stream's schema frame was received,
// which orders the cancel after registration.
func (sess *session) cancelStream(id uint64) {
	sess.smu.Lock()
	w := sess.streams[id]
	sess.smu.Unlock()
	if w != nil {
		w.cancelReq()
	}
}

func (s *Server) session(conn net.Conn) {
	sess := &session{
		srv:     s,
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 32<<10),
		streams: make(map[uint64]*streamWriter),
	}
	sess.ctx, sess.cancel = context.WithCancel(context.Background())
	sess.lim.Store(&sessionLimits{maxFrame: s.cfg.MaxFrame, window: s.cfg.StreamWindow})
	defer func() {
		sess.cancel()
		conn.Close()
		s.conns.Add(-1)
		s.mu.Lock()
		delete(s.active, conn)
		s.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Requests pass through a bounded admission pump instead of blocking
	// the read loop directly on the pipeline cap: the read loop must stay
	// responsive to FrameCredit flow-control frames even while a full
	// pipeline of streamed queries is blocked awaiting those very credits.
	// Memory stays bounded at ~2× MaxPipelinedRequests parked requests;
	// a client that pipelines beyond that stalls via TCP as before.
	var handlers sync.WaitGroup
	pipeline := make(chan struct{}, s.cfg.MaxPipelinedRequests)
	reqCh := make(chan Request, s.cfg.MaxPipelinedRequests)
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for req := range reqCh {
			select {
			case pipeline <- struct{}{}:
			case <-sess.ctx.Done():
				s.reqsInFlight.Add(-1) // the request just taken
				return                 // connection gone; drop parked requests
			}
			handlers.Add(1)
			go func(req Request) {
				defer handlers.Done()
				defer s.reqsInFlight.Add(-1)
				defer func() { <-pipeline }()
				if req.Op == OpQuery && req.Query != nil && req.Query.Stream && sess.limits().binary {
					s.dispatchStream(sess, &req)
					return
				}
				sess.writeResponse(s.dispatch(&req))
			}(req)
		}
	}()
	defer func() {
		sess.cancel() // unblock the pump and any credit-waiting streams
		close(reqCh)
		<-pumpDone
		handlers.Wait()
		for range reqCh { // parked requests the pump never handled
			s.reqsInFlight.Add(-1)
		}
	}()
	for {
		kind, payload, _, err := ReadRawFrame(sess.br, sess.limits().maxFrame)
		if err != nil {
			var fse *FrameSizeError
			if errors.As(err, &fse) {
				// Tell the peer why before closing: framing cannot be
				// re-synchronized after an unread oversized body.
				sess.writeResponse(&Response{Error: Errorf(CodeFrameTooLarge, "%v", err)})
			} else if !errors.Is(err, net.ErrClosed) && !isEOF(err) {
				s.cfg.Logf("server: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch kind {
		case FrameCredit:
			id, n, err := DecodeCreditPayload(payload)
			if err != nil {
				s.cfg.Logf("server: %s: %v", conn.RemoteAddr(), err)
				return
			}
			sess.creditStream(id, uint64(n))
			continue
		case FrameCancel:
			id, err := StreamFrameID(payload)
			if err != nil {
				s.cfg.Logf("server: %s: %v", conn.RemoteAddr(), err)
				return
			}
			sess.cancelStream(id)
			continue
		case FramePublish:
			// Binary publish: rows arrive as one typed batch, so the
			// handler skips JSON value coercion entirely. Answered with a
			// normal JSON Response through the same pipeline (counters,
			// pipelining backpressure) as a JSON publish.
			id, pubID, rel, rows, err := DecodePublishPayload(payload)
			if err != nil {
				if id2, iderr := StreamFrameID(payload); iderr == nil {
					sess.writeResponse(&Response{ID: id2, Error: Errorf(CodeBadRequest, "%v", err)})
					continue
				}
				s.cfg.Logf("server: %s: %v", conn.RemoteAddr(), err)
				return
			}
			s.reqsInFlight.Add(1)
			reqCh <- Request{
				ID:      id,
				Op:      OpPublish,
				Publish: &PublishRequest{Relation: rel, PublishID: pubID, TypedRows: rows},
			}
			continue
		case FrameJSON:
		default:
			s.cfg.Logf("server: %s: client sent unexpected %v frame", conn.RemoteAddr(), kind)
			return
		}
		var req Request
		if err := UnmarshalJSONFrame(payload, &req); err != nil {
			s.cfg.Logf("server: %s: read: %v", conn.RemoteAddr(), err)
			return
		}
		if req.Op == OpHello {
			// Handled inline so the framing switch is ordered with the
			// response: the client sends no tagged frame until it reads it.
			s.handleHello(sess, &req)
			continue
		}
		s.reqsInFlight.Add(1)
		reqCh <- req // backpressure: stop reading when the pump is saturated
	}
}

// handleHello negotiates protocol features: the intersection of the two
// peers' feature lists and the min of their frame/window limits.
func (s *Server) handleHello(sess *session, req *Request) {
	start := time.Now()
	resp := &Response{ID: req.ID}
	if req.Hello == nil {
		resp.Error = Errorf(CodeBadRequest, "hello payload missing")
	} else {
		cur := sess.limits()
		lim := &sessionLimits{maxFrame: cur.maxFrame, window: cur.window}
		if mf := req.Hello.MaxFrame; mf > 0 && mf < lim.maxFrame {
			lim.maxFrame = mf
		}
		if lim.maxFrame < MinFrame {
			lim.maxFrame = MinFrame // control frames must always fit
		}
		if w := req.Hello.Window; w > 0 && w < lim.window {
			lim.window = w
		}
		var features []string
		for _, f := range req.Hello.Features {
			switch f {
			case FeatureBinaryStream:
				lim.binary = true
				features = append(features, FeatureBinaryStream)
			case FeatureBinaryPublish:
				features = append(features, FeatureBinaryPublish)
			case FeaturePublishID:
				features = append(features, FeaturePublishID)
			}
		}
		resp.Hello = &HelloResponse{
			Version:  ProtocolVersion,
			Features: features,
			MaxFrame: lim.maxFrame,
			Window:   lim.window,
		}
		sess.lim.Store(lim)
	}
	err := sess.writeResponse(resp)
	s.observeOp(OpHello, time.Since(start), resp.Error != nil || err != nil)
}

// dispatchStream answers one query request with a binary result stream:
// Schema, Batch*, End — with errors carried in the End frame.
func (s *Server) dispatchStream(sess *session, req *Request) {
	start := time.Now()
	ctx, cancel := context.WithTimeout(sess.ctx, s.cfg.RequestTimeout)
	defer cancel()
	if ms := req.Query.TimeoutMs; ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < s.cfg.RequestTimeout {
			var c2 context.CancelFunc
			ctx, c2 = context.WithTimeout(ctx, d)
			defer c2()
		}
	}
	w := newStreamWriter(ctx, sess, req.ID, sess.limits().window)
	w.cancelFn = cancel // a FrameCancel aborts the query context
	w.onFirst = func() { s.firstBatch.Observe(time.Since(start)) }
	if s.draining.Load() {
		// Refused before any execution: the client may re-route freely.
		w.end(&StreamEnd{Error: Errorf(CodeUnavailable, "server draining")}, nil)
		s.observeOp(OpQuery, time.Since(start), true)
		return
	}
	if !sess.registerStream(req.ID, w) {
		w.end(&StreamEnd{Error: Errorf(CodeBadRequest, "stream id %d already active on this connection", req.ID)}, nil)
		s.observeOp(OpQuery, time.Since(start), true)
		return
	}
	// Unregistered by end()'s beforeEnd hook — before the End frame hits
	// the wire — so a client reacting to End by reusing the ID on its next
	// pipelined query cannot race the cleanup; the defer only covers error
	// exits (dropStream is idempotent).
	defer sess.dropStream(req.ID)
	drop := func() { sess.dropStream(req.ID) }

	tail, err := s.runQueryStreamed(ctx, req.Query, w)
	failed := err != nil
	if err == nil && tail.Streamed > 0 {
		s.streamedQueries.Inc()
		s.streamedRows.Add(uint64(tail.Streamed))
	}
	if failed {
		if w.cancelled.Load() {
			// The client abandoned the stream; whatever the aborted
			// execution reported, the terminal status is "cancelled".
			tail = &StreamEnd{Error: Errorf(CodeCancelled, "stream cancelled by client")}
		} else {
			tail = &StreamEnd{Error: toWireError(ctx, err)}
		}
	}
	if werr := w.end(tail, drop); werr != nil {
		failed = true
		if !errors.Is(werr, net.ErrClosed) {
			// The tail itself would not encode (e.g. a plan or error
			// message past the negotiated frame cap): a stream must never
			// end without its End frame, so degrade to a minimal error
			// End — and sever the connection if even that cannot be sent,
			// rather than leave the client waiting forever.
			code := CodeInternal
			var fse *FrameSizeError
			if errors.As(werr, &fse) {
				code = CodeFrameTooLarge
			}
			fallback := &StreamEnd{Error: Errorf(code, "encode stream end: frame limit exceeded")}
			if werr2 := w.end(fallback, nil); werr2 != nil {
				sess.conn.Close()
			}
		}
	}
	s.observeOp(OpQuery, time.Since(start), failed)
}

// acquireAdmission passes the admission-control semaphore and accounts
// the in-flight query; the returned release is idempotent.
func (s *Server) acquireAdmission(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, Errorf(CodeTimeout, "admission wait: %v", ctx.Err())
	}
	n := s.inFlight.Add(1)
	for {
		peak := s.peakFlight.Load()
		if n <= peak || s.peakFlight.CompareAndSwap(peak, n) {
			break
		}
	}
	if s.cfg.OnQueryStart != nil {
		s.cfg.OnQueryStart()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			s.inFlight.Add(-1)
			<-s.sem
		})
	}, nil
}

// runQueryStreamed passes admission control, then executes the query
// against a streaming backend — or falls back to the buffered Query path
// re-chunked into batches for backends that predate streaming.
//
// The admission slot is held until the backend returns. With streaming
// pushdown, result frames now flow *during* execution (the schema frame
// arrives with the first batch, not after the collect), so releasing the
// slot at the schema frame — as the buffered-era server did — would stop
// bounding concurrent executions at all. The slot therefore covers
// execution plus emission; the credit window already bounds how long a
// slow reader can stretch that (the request timeout severs stalled
// streams).
func (s *Server) runQueryStreamed(ctx context.Context, q *QueryRequest, out *streamWriter) (*StreamEnd, error) {
	release, err := s.acquireAdmission(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	forced := s.forceTrace(q)
	start := time.Now()
	if sb, ok := s.backend.(StreamingBackend); ok {
		tail, err := sb.QueryStream(ctx, q, out)
		if err != nil {
			s.noteSlow(q, start, out.RowsStaged(), nil, nil, err, true)
			return nil, err
		}
		s.noteSlow(q, start, out.RowsStaged(), nil, tail, nil, true)
		if forced {
			tail.Trace, tail.TraceID = nil, ""
		}
		return &StreamEnd{QueryTail: *tail}, nil
	}
	resp, err := s.backend.Query(ctx, q)
	s.noteSlow(q, start, responseRows(resp), resp, nil, err, true)
	if err != nil {
		return nil, err
	}
	if forced {
		resp.Trace, resp.TraceID = nil, ""
	}
	if err := out.Columns(resp.Columns); err != nil {
		return nil, err
	}
	rows := resp.Rows.Typed
	if rows == nil && resp.Rows.Any != nil {
		if rows, err = rowsFromAny(resp.Rows.Any); err != nil {
			return nil, err
		}
	}
	if err := out.Batch(rows); err != nil {
		return nil, err
	}
	return &StreamEnd{QueryTail: QueryTail{
		Epoch:    resp.Epoch,
		Cached:   resp.Cached,
		Phases:   resp.Phases,
		Restarts: resp.Restarts,
		Plan:     resp.Plan,
		TraceID:  resp.TraceID,
		Trace:    resp.Trace,
	}}, nil
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// dispatch executes one request and accounts it.
func (s *Server) dispatch(req *Request) *Response {
	op := req.Op
	start := time.Now()
	resp := &Response{ID: req.ID}
	if s.ops[op] == nil {
		resp.Error = Errorf(CodeBadRequest, "unknown op %q", op)
		return resp
	}
	if s.draining.Load() && (op == OpQuery || op == OpPublish || op == OpCreate) {
		// Refused before any execution — a proof of non-execution the
		// client may act on by re-routing to another endpoint.
		resp.Error = Errorf(CodeUnavailable, "server draining")
		s.observeOp(op, time.Since(start), true)
		return resp
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	err := s.handle(ctx, req, resp)
	if err != nil {
		resp.Error = toWireError(ctx, err)
	}
	s.observeOp(op, time.Since(start), resp.Error != nil)
	return resp
}

func (s *Server) handle(ctx context.Context, req *Request, resp *Response) error {
	switch req.Op {
	case OpPing:
		resp.Epoch = uint64(s.backend.Epoch())
		return nil
	case OpCreate:
		if req.Create == nil {
			return Errorf(CodeBadRequest, "create payload missing")
		}
		e, err := s.backend.Create(ctx, req.Create)
		if err != nil {
			return err
		}
		resp.Epoch = uint64(e)
		return nil
	case OpPublish:
		if req.Publish == nil {
			return Errorf(CodeBadRequest, "publish payload missing")
		}
		e, err := s.backend.Publish(ctx, req.Publish)
		if err != nil {
			return err
		}
		resp.Epoch = uint64(e)
		return nil
	case OpQuery:
		if req.Query == nil {
			return Errorf(CodeBadRequest, "query payload missing")
		}
		if ms := req.Query.TimeoutMs; ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < s.cfg.RequestTimeout {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, d)
				defer cancel()
			}
		}
		qr, err := s.runQuery(ctx, req.Query)
		if err != nil {
			return err
		}
		resp.Query = qr
		return nil
	case OpSchema:
		rel := ""
		if req.Schema != nil {
			rel = req.Schema.Relation
		}
		sr, err := s.backend.Catalog(ctx, rel)
		if err != nil {
			return err
		}
		resp.Schema = sr
		return nil
	case OpStatus:
		resp.Status = s.status()
		return nil
	case OpHealth:
		resp.Health = s.health()
		return nil
	case OpTrace:
		entries, dropped := s.slow.snapshot(true)
		resp.Trace = &TraceResponse{
			ThresholdMs: max(s.slow.threshold.Milliseconds(), 0),
			Dropped:     dropped,
			Entries:     entries,
		}
		return nil
	}
	return Errorf(CodeBadRequest, "unknown op %q", req.Op)
}

// runQuery passes the admission-control semaphore, then executes. The
// wait is bounded by the request context so an overloaded server times
// out queued queries instead of letting them pile up forever.
func (s *Server) runQuery(ctx context.Context, q *QueryRequest) (*QueryResponse, error) {
	release, err := s.acquireAdmission(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	forced := s.forceTrace(q)
	start := time.Now()
	qr, err := s.backend.Query(ctx, q)
	s.noteSlow(q, start, responseRows(qr), qr, nil, err, false)
	if forced && qr != nil {
		qr.Trace, qr.TraceID = nil, ""
	}
	return qr, err
}

// responseRows counts a buffered response's result rows for accounting.
func responseRows(qr *QueryResponse) int64 {
	if qr == nil {
		return 0
	}
	if qr.Rows.Typed != nil {
		return int64(len(qr.Rows.Typed))
	}
	return int64(len(qr.Rows.Any))
}

// forceTrace turns tracing on for a query the client did not ask to
// trace, so the slow-query log can capture its span tree; the caller
// strips the tree back out of the response when it returns true.
func (s *Server) forceTrace(q *QueryRequest) bool {
	if q.Trace || !s.slow.enabled() {
		return false
	}
	q.Trace = true
	return true
}

// noteSlow records a completed query in the slow-query log when its
// service time crossed the threshold. Exactly one of qr/tail carries
// the trace (buffered vs streamed path); both may be nil on error. rows
// is the result size — collected rows on the buffered path, rows handed
// to the stream writer on the streamed path, so streamed entries log
// their true row count instead of the rows=0 the collect-time accounting
// used to produce.
func (s *Server) noteSlow(q *QueryRequest, start time.Time, rows int64, qr *QueryResponse, tail *QueryTail, err error, streamed bool) {
	d := time.Since(start)
	if !s.slow.qualifies(d) {
		return
	}
	e := SlowQuery{
		SQL:         q.SQL,
		DurUs:       d.Microseconds(),
		StartUnixMs: start.UnixMilli(),
		Streamed:    streamed,
		Rows:        rows,
	}
	if err != nil {
		e.Error = err.Error()
	}
	if qr != nil {
		e.TraceID, e.Trace = qr.TraceID, qr.Trace
	}
	if tail != nil {
		e.TraceID, e.Trace = tail.TraceID, tail.Trace
	}
	s.slow.record(e)
}

// peers returns the deployment's advertised client endpoints:
// Config.Peers when set, else whatever the backend reports.
func (s *Server) peers() []string {
	if s.cfg.Peers != nil {
		return s.cfg.Peers()
	}
	return s.backend.Info().Peers
}

// health answers the health op: drain state, load, and the member list.
func (s *Server) health() *HealthResponse {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	return &HealthResponse{
		Status:        status,
		InFlight:      s.inFlight.Load(),
		MaxConcurrent: s.cfg.MaxConcurrentQueries,
		Connections:   s.conns.Load(),
		Peers:         s.peers(),
	}
}

func (s *Server) status() *StatusResponse {
	info := s.backend.Info()
	st := &StatusResponse{
		NodeID:               info.NodeID,
		Members:              info.Members,
		Peers:                s.peers(),
		Epoch:                uint64(s.backend.Epoch()),
		UptimeMs:             time.Since(s.start).Milliseconds(),
		Connections:          s.conns.Load(),
		TotalConnections:     s.totalConns.Load(),
		InFlightQueries:      s.inFlight.Load(),
		PeakInFlightQueries:  s.peakFlight.Load(),
		MaxConcurrentQueries: s.cfg.MaxConcurrentQueries,
		Ops:                  make(map[string]OpCounters, len(s.ops)),
	}
	for op, m := range s.ops {
		snap := m.hist.Snapshot()
		st.Ops[op] = OpCounters{
			Count:   snap.Count,
			Errors:  m.errors.Load(),
			TotalUs: snap.SumUs,
			MaxUs:   snap.MaxUs,
			P50Us:   snap.Quantile(0.50),
			P95Us:   snap.Quantile(0.95),
			P99Us:   snap.Quantile(0.99),
		}
	}
	if prov, ok := s.backend.(CacheStatsProvider); ok {
		st.Caches = prov.CacheStats()
	}
	if prov, ok := s.backend.(DurabilityStatsProvider); ok {
		if d, dok := prov.DurabilityStats(); dok {
			st.Durability = &d
		}
	}
	if prov, ok := s.backend.(ReplStatsProvider); ok {
		if r, rok := prov.ReplStats(); rok {
			st.Replication = &r
		}
	}
	if n := s.streamedQueries.Load(); n > 0 {
		snap := s.firstBatch.Snapshot()
		st.Streams = &StreamStats{
			Queries:         n,
			Rows:            s.streamedRows.Load(),
			FirstBatchP50Us: snap.Quantile(0.50),
			FirstBatchP95Us: snap.Quantile(0.95),
			FirstBatchP99Us: snap.Quantile(0.99),
			FirstBatchMaxUs: snap.MaxUs,
		}
	}
	st.SlowQueries, _ = s.slow.snapshot(false)
	return st
}

// Stats snapshots the server's own counters (the status op, server-side).
func (s *Server) Stats() *StatusResponse { return s.status() }

// toWireError maps backend errors onto wire codes, preserving codes that
// are already typed.
func toWireError(ctx context.Context, err error) *WireError {
	var we *WireError
	if errors.As(err, &we) {
		return we
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return Errorf(CodeTimeout, "%v", err)
	}
	return Errorf(CodeInternal, "%v", err)
}
