package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"orchestra/internal/tuple"
)

// streamStub is a StreamingBackend emitting scripted batches.
type streamStub struct {
	stubBackend
	cols    []string
	batches [][]tuple.Row
	tail    QueryTail
	gate    chan struct{} // when set, received before each batch
}

func (b *streamStub) QueryStream(ctx context.Context, req *QueryRequest, out ResultStream) (*QueryTail, error) {
	if b.queryErr != nil {
		return nil, b.queryErr
	}
	if err := out.Columns(b.cols); err != nil {
		return nil, err
	}
	for _, rows := range b.batches {
		if b.gate != nil {
			select {
			case <-b.gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := out.Batch(rows); err != nil {
			return nil, err
		}
	}
	t := b.tail
	return &t, nil
}

// doHello performs the handshake on a raw test connection and returns
// the negotiated settings.
func doHello(t *testing.T, conn net.Conn, br *bufio.Reader, req *HelloRequest) *HelloResponse {
	t.Helper()
	if req == nil {
		req = &HelloRequest{Version: ProtocolVersion, Features: []string{FeatureBinaryStream}}
	}
	if err := WriteFrame(conn, &Request{ID: 99, Op: OpHello, Hello: req}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != nil {
		t.Fatalf("hello: %v", resp.Error)
	}
	if resp.Hello == nil {
		t.Fatal("hello: no payload")
	}
	return resp.Hello
}

// readAnyResponse reads one JSON response of either framing.
func readAnyResponse(br *bufio.Reader, resp *Response) error {
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil {
		return err
	}
	if kind != FrameJSON {
		return errors.New("not a JSON frame")
	}
	return UnmarshalJSONFrame(payload, resp)
}

func TestHelloNegotiation(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{StreamWindow: 6})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	h := doHello(t, conn, br, &HelloRequest{
		Version:  ProtocolVersion,
		Features: []string{FeatureBinaryStream, "future-feature"},
		MaxFrame: 1 << 20,
		Window:   4,
	})
	if h.Version != ProtocolVersion {
		t.Fatalf("version %d", h.Version)
	}
	if len(h.Features) != 1 || h.Features[0] != FeatureBinaryStream {
		t.Fatalf("features %v: unknown features must not be echoed", h.Features)
	}
	if h.MaxFrame != 1<<20 {
		t.Fatalf("max frame %d, want the client's lower 1MiB", h.MaxFrame)
	}
	if h.Window != 4 {
		t.Fatalf("window %d, want min(4, 6)", h.Window)
	}
	// Hello is accounted like any op.
	if st := s.Stats(); st.Ops[OpHello].Count != 1 {
		t.Fatalf("hello count %d", st.Ops[OpHello].Count)
	}
}

func TestHelloWithoutBinaryKeepsJSON(t *testing.T) {
	stub := &stubBackend{}
	s := startTestServer(t, stub, Config{})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	h := doHello(t, conn, br, &HelloRequest{Version: ProtocolVersion})
	if len(h.Features) != 0 {
		t.Fatalf("features %v", h.Features)
	}
	// A Stream query on a JSON session is answered as plain JSON.
	req := &Request{ID: 5, Op: OpQuery, Query: &QueryRequest{SQL: "q", Stream: true}}
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != nil || resp.Query == nil {
		t.Fatalf("stream-on-json fallback: %+v", resp)
	}
}

// TestStreamedQueryFrames drives the full frame sequence against a
// scripted streaming backend and checks shape, content, and IDs.
func TestStreamedQueryFrames(t *testing.T) {
	rows := func(lo, hi int) []tuple.Row {
		var out []tuple.Row
		for i := lo; i < hi; i++ {
			out = append(out, tuple.Row{tuple.I(int64(i)), tuple.S("v")})
		}
		return out
	}
	stub := &streamStub{
		cols:    []string{"a", "b"},
		batches: [][]tuple.Row{rows(0, 10), rows(10, 25)},
		tail:    QueryTail{Epoch: 42, Phases: 1},
	}
	s := startTestServer(t, stub, Config{})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, nil)

	const reqID = 777
	if err := WriteFrame(conn, &Request{ID: reqID, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameSchema {
		t.Fatalf("first frame %v, want schema", kind)
	}
	id, cols, err := DecodeSchemaPayload(payload)
	if err != nil || id != reqID {
		t.Fatalf("schema: id=%d err=%v", id, err)
	}
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("cols %v", cols)
	}
	var got []tuple.Row
	for {
		kind, payload, _, err = ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if kind == FrameBatch {
			id, rows, err := DecodeBatchPayload(payload)
			if err != nil || id != reqID {
				t.Fatalf("batch: id=%d err=%v", id, err)
			}
			got = append(got, rows...)
			continue
		}
		break
	}
	if kind != FrameEnd {
		t.Fatalf("terminal frame %v, want end", kind)
	}
	id, end, err := DecodeEndPayload(payload)
	if err != nil || id != reqID {
		t.Fatalf("end: id=%d err=%v", id, err)
	}
	if end.Error != nil || end.Epoch != 42 || end.Rows != 25 {
		t.Fatalf("end: %+v", end)
	}
	if len(got) != 25 {
		t.Fatalf("streamed %d rows, want 25", len(got))
	}
	for i, r := range got {
		if r[0].I64 != int64(i) || r[1].Str != "v" {
			t.Fatalf("row %d: %v", i, r)
		}
	}
}

// TestStreamCreditBackpressure negotiates a window of 1 and shows (a)
// the server stalls after one un-acknowledged batch, (b) other requests
// still interleave on the connection mid-stream, and (c) credits resume
// the stream to completion.
func TestStreamCreditBackpressure(t *testing.T) {
	big := make([]tuple.Row, 2000)
	for i := range big {
		big[i] = tuple.Row{tuple.I(int64(i)), tuple.S("padpadpadpadpadpadpadpad")}
	}
	stub := &streamStub{
		cols:    []string{"a", "b"},
		batches: [][]tuple.Row{big[:700], big[700:1400], big[1400:]},
	}
	s := startTestServer(t, stub, Config{})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	// Negotiate a small frame cap so the byte target (maxFrame/4 = 16KiB)
	// cuts the ~70KiB result into several wire batches; window 1 then
	// stalls the stream after each un-credited batch.
	h := doHello(t, conn, br, &HelloRequest{
		Version: ProtocolVersion, Features: []string{FeatureBinaryStream},
		Window: 1, MaxFrame: 64 << 10,
	})
	if h.Window != 1 {
		t.Fatalf("window %d", h.Window)
	}
	const reqID = 9
	if err := WriteFrame(conn, &Request{ID: reqID, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	// Schema, then exactly one batch; the server now owes us nothing
	// until we grant credit.
	kind, _, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameSchema {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameBatch {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	_, rows1, err := DecodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: a ping mid-stream gets its response while the stream
	// is stalled on credit.
	if err := WriteFrame(conn, &Request{ID: 10, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 10 || resp.Error != nil {
		t.Fatalf("interleaved ping: %+v", resp)
	}
	// Grant credits until the stream completes.
	total := len(rows1)
	for {
		credit := AppendCreditPayload(nil, reqID, 1)
		frame, err := AppendBinaryFrame(nil, FrameCredit, credit, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		kind, payload, _, err := ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if kind == FrameEnd {
			_, end, err := DecodeEndPayload(payload)
			if err != nil || end.Error != nil {
				t.Fatalf("end: %+v err=%v", end, err)
			}
			if int(end.Rows) != len(big) {
				t.Fatalf("end rows %d, want %d", end.Rows, len(big))
			}
			break
		}
		if kind != FrameBatch {
			t.Fatalf("kind=%v", kind)
		}
		_, rows, err := DecodeBatchPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
	}
	if total != len(big) {
		t.Fatalf("streamed %d rows, want %d", total, len(big))
	}
}

// TestStreamHeterogeneousRowTypes: result rows whose column types vary
// row to row (legal for expression results) must be cut into
// type-homogeneous batches, never co-batched or dropped.
func TestStreamHeterogeneousRowTypes(t *testing.T) {
	var rows []tuple.Row
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			rows = append(rows, tuple.Row{tuple.I(int64(i))})
		case 1:
			rows = append(rows, tuple.Row{tuple.S(fmt.Sprintf("s%d", i))})
		default:
			rows = append(rows, tuple.Row{tuple.F(float64(i))})
		}
	}
	stub := &streamStub{cols: []string{"x"}, batches: [][]tuple.Row{rows}}
	s := startTestServer(t, stub, Config{StreamWindow: 64})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, nil)
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	var got []tuple.Row
	for {
		kind, payload, _, err := ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case FrameSchema:
		case FrameBatch:
			_, batch, err := DecodeBatchPayload(payload)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, batch...)
		case FrameEnd:
			_, end, err := DecodeEndPayload(payload)
			if err != nil {
				t.Fatal(err)
			}
			if end.Error != nil {
				t.Fatalf("heterogeneous stream failed: %v", end.Error)
			}
			if len(got) != len(rows) {
				t.Fatalf("streamed %d rows, want %d", len(got), len(rows))
			}
			for i := range rows {
				if !got[i].Equal(rows[i]) || got[i][0].T != rows[i][0].T {
					t.Fatalf("row %d: %v (type %v) != %v", i, got[i], got[i][0].T, rows[i])
				}
			}
			return
		default:
			t.Fatalf("unexpected %v frame", kind)
		}
	}
}

// TestStreamDuplicateIDRejected: a second streamed query reusing an
// active stream's ID is refused with an error End frame (its frames
// would be un-demultiplexable), and the first stream is unaffected.
func TestStreamDuplicateIDRejected(t *testing.T) {
	rows := make([]tuple.Row, 4)
	for i := range rows {
		rows[i] = tuple.Row{tuple.I(int64(i))}
	}
	gate := make(chan struct{})
	stub := &streamStub{cols: []string{"x"}, batches: [][]tuple.Row{rows}, gate: gate}
	s := startTestServer(t, stub, Config{MaxConcurrentQueries: 4})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, nil)
	// First stream: parks before its batch, holding ID 5 active.
	if err := WriteFrame(conn, &Request{ID: 5, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	kind, _, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameSchema {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	// Second stream reusing ID 5 is rejected outright.
	if err := WriteFrame(conn, &Request{ID: 5, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameEnd {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	if _, end, err := DecodeEndPayload(payload); err != nil ||
		end.Error == nil || end.Error.Code != CodeBadRequest {
		t.Fatalf("end %+v err=%v, want bad_request", end, err)
	}
	// The first stream completes untouched.
	close(gate)
	var got int
	for {
		kind, payload, _, err := ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if kind == FrameBatch {
			_, batch, err := DecodeBatchPayload(payload)
			if err != nil {
				t.Fatal(err)
			}
			got += len(batch)
			continue
		}
		if kind != FrameEnd {
			t.Fatalf("kind=%v", kind)
		}
		if _, end, err := DecodeEndPayload(payload); err != nil || end.Error != nil {
			t.Fatalf("first stream end %+v err=%v", end, err)
		}
		break
	}
	if got != len(rows) {
		t.Fatalf("first stream rows %d, want %d", got, len(rows))
	}
}

// TestStreamErrorInEndFrame: a failing query on a stream request is
// reported in the End frame, and the session survives.
func TestStreamErrorInEndFrame(t *testing.T) {
	stub := &streamStub{}
	stub.queryErr = errors.New("boom")
	s := startTestServer(t, stub, Config{})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, nil)
	if err := WriteFrame(conn, &Request{ID: 3, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameEnd {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	id, end, err := DecodeEndPayload(payload)
	if err != nil || id != 3 {
		t.Fatal(err)
	}
	if end.Error == nil || end.Error.Code != CodeInternal {
		t.Fatalf("end error %+v", end.Error)
	}
	// Session alive.
	if err := WriteFrame(conn, &Request{ID: 4, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil || resp.Error != nil {
		t.Fatalf("session died: %v %v", err, resp.Error)
	}
}

// TestStreamFallbackChunksBufferedBackend: a backend without
// StreamingBackend still serves stream requests (server-side re-chunk).
func TestStreamFallbackChunksBufferedBackend(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, nil)
	if err := WriteFrame(conn, &Request{ID: 8, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameSchema {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	kind, payload, _, err = ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameBatch {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	_, rows, err := DecodeBatchPayload(payload)
	if err != nil || len(rows) != 1 || rows[0][0].I64 != 1 {
		t.Fatalf("rows %v err=%v", rows, err)
	}
	kind, payload, _, err = ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameEnd {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	if _, end, err := DecodeEndPayload(payload); err != nil || end.Error != nil || end.Epoch != 3 {
		t.Fatalf("end %+v err=%v", end, err)
	}
}

// TestInboundFrameTooLarge: the server reports frame_too_large before
// closing instead of silently dropping the connection.
func TestInboundFrameTooLarge(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{MaxFrame: 1 << 10})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	big := &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: string(make([]byte, 4<<10))}}
	if err := WriteFrame(conn, big); err != nil {
		t.Fatal(err)
	}
	var resp Response
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeFrameTooLarge {
		t.Fatalf("got %+v, want frame_too_large", resp.Error)
	}
	// The connection is closed afterwards (framing lost).
	if err := readAnyResponse(br, &resp); err == nil {
		t.Fatal("connection survived unreadable frame")
	}
}

// TestOversizedJSONResultFailsRequest: a result bigger than the frame
// cap fails that request with frame_too_large; the session survives and
// the same query succeeds via streaming.
func TestOversizedJSONResultFailsRequest(t *testing.T) {
	var rows []tuple.Row
	for i := 0; i < 3000; i++ {
		rows = append(rows, tuple.Row{tuple.I(int64(i)), tuple.S("pad pad pad pad pad pad")})
	}
	stub := &streamStub{cols: []string{"a", "b"}, batches: [][]tuple.Row{rows}}
	stub.queryResp = &QueryResponse{Columns: []string{"a", "b"}, Rows: EncodeRows(rows), Epoch: 3}
	s := startTestServer(t, stub, Config{MaxFrame: 16 << 10})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)

	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "big"}}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeFrameTooLarge {
		t.Fatalf("got %+v, want frame_too_large", resp.Error)
	}

	// Same result via streaming completes: each batch frame fits.
	doHello(t, conn, br, nil)
	if err := WriteFrame(conn, &Request{ID: 2, Op: OpQuery,
		Query: &QueryRequest{SQL: "big", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		kind, payload, _, err := ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case FrameSchema:
		case FrameBatch:
			_, batch, err := DecodeBatchPayload(payload)
			if err != nil {
				t.Fatal(err)
			}
			n += len(batch)
			// Keep the credit window sliding: with a 16KiB frame cap the
			// result spans far more batch frames than the default window.
			credit := AppendCreditPayload(nil, 2, 1)
			frame, err := AppendBinaryFrame(nil, FrameCredit, credit, MaxFrame)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
		case FrameEnd:
			_, end, err := DecodeEndPayload(payload)
			if err != nil || end.Error != nil {
				t.Fatalf("end %+v err=%v", end, err)
			}
			if n != len(rows) {
				t.Fatalf("streamed %d rows, want %d", n, len(rows))
			}
			return
		default:
			t.Fatalf("unexpected %v frame", kind)
		}
	}
}

// TestWireRowsJSON checks the append-based row encoder against
// encoding/json output and the NaN rejection.
func TestWireRowsJSON(t *testing.T) {
	rows := []tuple.Row{
		{tuple.I(5), tuple.F(2), tuple.F(2.5), tuple.S("x")},
		{tuple.I(-7), tuple.F(1e300), tuple.F(-0.125), tuple.S("quote\"back\\slash\nnewline\x01ctl")},
	}
	got, err := json.Marshal(EncodeRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	// The encoder's output must itself be valid JSON that decodes to the
	// same values.
	var wire WireRows
	if err := wire.UnmarshalJSON(got); err != nil {
		t.Fatalf("self-decode: %v (payload %s)", err, got)
	}
	if len(wire.Any) != 2 {
		t.Fatalf("rows %d", len(wire.Any))
	}
	if v, _ := DecodeValue(wire.Any[1][3]); v != "quote\"back\\slash\nnewline\x01ctl" {
		t.Fatalf("string mangled: %q", v)
	}
	if v, _ := DecodeValue(wire.Any[0][1]); v != float64(2) {
		t.Fatalf("integral float mangled: %v", v)
	}
	if v, _ := DecodeValue(wire.Any[0][0]); v != int64(5) {
		t.Fatalf("int mangled: %v", v)
	}
}

// TestStreamCancelFrame: a cancel frame stops server-side emission, the
// stream still terminates with a "cancelled" End frame, the admission
// slot is returned, and the connection (with its negotiated state)
// remains usable for further requests.
func TestStreamCancelFrame(t *testing.T) {
	// Rows big enough that each backend batch crosses the writer's flush
	// threshold (256 KiB), so batch frames go out before stream end.
	pad := strings.Repeat("p", 400)
	big := make([]tuple.Row, 3000)
	for i := range big {
		big[i] = tuple.Row{tuple.I(int64(i)), tuple.S(pad)}
	}
	gate := make(chan struct{}, 1)
	stub := &streamStub{
		cols:    []string{"a", "b"},
		batches: [][]tuple.Row{big[:1000], big[1000:2000], big[2000:]},
		gate:    gate,
	}
	s := startTestServer(t, stub, Config{StreamWindow: 1})
	conn := dialTest(t, s)
	br := bufio.NewReader(conn)
	doHello(t, conn, br, &HelloRequest{
		Version:  ProtocolVersion,
		Features: []string{FeatureBinaryStream},
		Window:   1,
	})

	const reqID = 11
	if err := WriteFrame(conn, &Request{ID: reqID, Op: OpQuery,
		Query: &QueryRequest{SQL: "q", Stream: true}}); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // release the first backend batch
	kind, payload, _, err := ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameSchema {
		t.Fatalf("first frame %v err=%v, want schema", kind, err)
	}
	// Consume frames until the first batch arrives; the window of 1 then
	// stalls the writer while the backend waits on its gate.
	kind, payload, _, err = ReadRawFrame(br, MaxFrame)
	if err != nil || kind != FrameBatch {
		t.Fatalf("second frame %v err=%v, want batch", kind, err)
	}
	if id, _, err := DecodeBatchPayload(payload); err != nil || id != reqID {
		t.Fatalf("batch id=%d err=%v", id, err)
	}

	// Abandon the stream: no credits, just a cancel frame.
	cancel := AppendCancelPayload(nil, reqID)
	frame, err := AppendBinaryFrame(nil, FrameCancel, cancel, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	// Everything up to End is drained; End must carry the cancelled code.
	for {
		kind, payload, _, err = ReadRawFrame(br, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if kind == FrameBatch {
			continue // in-flight before the cancel landed
		}
		break
	}
	if kind != FrameEnd {
		t.Fatalf("terminal frame %v, want end", kind)
	}
	id, end, err := DecodeEndPayload(payload)
	if err != nil || id != reqID {
		t.Fatalf("end: id=%d err=%v", id, err)
	}
	if end.Error == nil || end.Error.Code != CodeCancelled {
		t.Fatalf("end error %+v, want code %q", end.Error, CodeCancelled)
	}

	// The admission slot came back.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().InFlightQueries != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight queries stuck at %d after cancel", s.Stats().InFlightQueries)
		}
		time.Sleep(time.Millisecond)
	}

	// The connection and its negotiated binary framing remain usable.
	if err := WriteFrame(conn, &Request{ID: 12, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 12 || resp.Error != nil {
		t.Fatalf("post-cancel ping: %+v", resp)
	}

	// A cancel for an unknown stream is ignored, not fatal.
	unknown := AppendCancelPayload(nil, 9999)
	frame, err = AppendBinaryFrame(nil, FrameCancel, unknown, MaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, &Request{ID: 13, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if err := readAnyResponse(br, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 13 || resp.Error != nil {
		t.Fatalf("ping after unknown-id cancel: %+v", resp)
	}
}
