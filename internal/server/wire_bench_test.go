package server

// Wire-path microbenchmarks (CI runs `-bench=Wire -benchtime=1x` as a
// smoke test; run with -benchtime=2s for real numbers). They compare the
// two result codecs at the encode/decode layer — the end-to-end numbers
// live in cmd/orchestra-load's BENCH_wire.json.

import (
	"encoding/binary"
	"fmt"
	"testing"

	"orchestra/internal/tuple"
)

func benchResultRows(n int) []tuple.Row {
	rows := make([]tuple.Row, n)
	for i := range rows {
		rows[i] = tuple.Row{
			tuple.S(fmt.Sprintf("k%06d", i)),
			tuple.I(int64(i % 17)),
			tuple.I(int64(i)),
			tuple.F(float64(i) / 8),
		}
	}
	return rows
}

// BenchmarkWireJSONResponse measures the buffered JSON result path:
// one Response frame carrying all rows (the pre-streaming wire format,
// now with the append-based row encoder).
func BenchmarkWireJSONResponse(b *testing.B) {
	resp := &Response{ID: 1, Query: &QueryResponse{
		Columns: []string{"k", "grp", "v", "f"},
		Rows:    EncodeRows(benchResultRows(1000)),
		Epoch:   7,
	}}
	var frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		frame, err = AppendFrame(frame[:0], resp, MaxFrame)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

// BenchmarkWireJSONResponseDecode measures the client side of the JSON
// path: frame parse with json.Number plus per-cell DecodeValue.
func BenchmarkWireJSONResponseDecode(b *testing.B) {
	frame, err := AppendFrame(nil, &Response{ID: 1, Query: &QueryResponse{
		Columns: []string{"k", "grp", "v", "f"},
		Rows:    EncodeRows(benchResultRows(1000)),
		Epoch:   7,
	}}, MaxFrame)
	if err != nil {
		b.Fatal(err)
	}
	body := frame[4:]
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp Response
		if err := UnmarshalJSONFrame(body, &resp); err != nil {
			b.Fatal(err)
		}
		for _, row := range resp.Query.Rows.Any {
			for _, v := range row {
				if _, err := DecodeValue(v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkWireBinaryBatchFrame measures the streaming path's per-batch
// server cost: frame header + batch encode into a reused buffer.
func BenchmarkWireBinaryBatchFrame(b *testing.B) {
	rows := benchResultRows(1000)
	var frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, mark := beginBinaryFrame(frame[:0], FrameBatch)
		dst = binary.BigEndian.AppendUint64(dst, 1)
		var err error
		dst, err = tuple.AppendBatch(dst, rows, -1)
		if err != nil {
			b.Fatal(err)
		}
		frame, err = finishBinaryFrame(dst, mark, MaxFrame)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

// BenchmarkWireBinaryBatchDecode measures the client-side batch decode.
func BenchmarkWireBinaryBatchDecode(b *testing.B) {
	payload, err := tuple.AppendBatch(nil, benchResultRows(1000), -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuple.DecodeBatch(payload); err != nil {
			b.Fatal(err)
		}
	}
}
