package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/tuple"
)

// --- protocol ---

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{ID: 7, Op: OpQuery, Query: &QueryRequest{SQL: "SELECT 1", Epoch: 42}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Op != OpQuery || out.Query == nil || out.Query.SQL != "SELECT 1" || out.Query.Epoch != 42 {
		t.Fatalf("round trip mangled request: %+v", out)
	}
}

func TestFrameTooLarge(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	var req Request
	if err := ReadFrame(bytes.NewReader(hdr), &req); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestValueCodec checks the int/float disambiguation: integral floats
// must keep a decimal point on the wire so clients recover the type.
func TestValueCodec(t *testing.T) {
	rows := EncodeRows([]tuple.Row{{tuple.I(5), tuple.F(2), tuple.F(2.5), tuple.S("x")}})
	body, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := `[[5,2.0,2.5,"x"]]`
	if string(body) != want {
		t.Fatalf("encoded %s, want %s", body, want)
	}
	var wire [][]any
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(&wire); err != nil {
		t.Fatal(err)
	}
	got := make([]any, len(wire[0]))
	for i, v := range wire[0] {
		if got[i], err = DecodeValue(v); err != nil {
			t.Fatal(err)
		}
	}
	if got[0] != int64(5) || got[1] != float64(2) || got[2] != 2.5 || got[3] != "x" {
		t.Fatalf("decoded %#v", got)
	}
}

func TestCoerceRow(t *testing.T) {
	s := tuple.MustSchema("r", []tuple.Column{
		{Name: "a", Type: tuple.Int64},
		{Name: "b", Type: tuple.Float64},
		{Name: "c", Type: tuple.String},
	})
	row, err := CoerceRow(s, []any{json.Number("9"), json.Number("1.5"), "hi"})
	if err != nil {
		t.Fatal(err)
	}
	want := tuple.Row{tuple.I(9), tuple.F(1.5), tuple.S("hi")}
	for i := range want {
		if !row[i].Equal(want[i]) {
			t.Fatalf("col %d: got %v want %v", i, row[i], want[i])
		}
	}
	if _, err := CoerceRow(s, []any{json.Number("9.5"), json.Number("1"), "hi"}); err == nil {
		t.Fatal("fractional value accepted for int column")
	}
	if _, err := CoerceRow(s, []any{json.Number("9"), json.Number("1")}); err == nil {
		t.Fatal("short row accepted")
	}
	var we *WireError
	_, err = CoerceRow(s, []any{"no", json.Number("1"), "hi"})
	if !errors.As(err, &we) || we.Code != CodeBadRequest {
		t.Fatalf("type mismatch not a bad_request: %v", err)
	}
}

// --- server core, against a stub backend ---

// stubBackend answers queries after an optional gate, so tests control
// execution overlap precisely.
type stubBackend struct {
	queryDelay time.Duration
	queryErr   error
	queryResp  *QueryResponse
}

func (b *stubBackend) Create(ctx context.Context, req *CreateRequest) (tuple.Epoch, error) {
	return 1, nil
}

func (b *stubBackend) Publish(ctx context.Context, req *PublishRequest) (tuple.Epoch, error) {
	return 2, nil
}

func (b *stubBackend) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	if b.queryErr != nil {
		return nil, b.queryErr
	}
	if b.queryDelay > 0 {
		select {
		case <-time.After(b.queryDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if b.queryResp != nil {
		return b.queryResp, nil
	}
	return &QueryResponse{Columns: []string{"one"}, Rows: AnyRows([][]any{{1}}), Epoch: 3}, nil
}

func (b *stubBackend) Catalog(ctx context.Context, rel string) (*SchemaResponse, error) {
	if rel != "" && rel != "known" {
		return nil, Errorf(CodeNotFound, "relation %q", rel)
	}
	return &SchemaResponse{Relations: []RelationInfo{{Relation: "known"}}}, nil
}

func (b *stubBackend) Epoch() tuple.Epoch { return 3 }
func (b *stubBackend) Info() BackendInfo  { return BackendInfo{NodeID: "stub", Members: 1} }

func startTestServer(t *testing.T, b Backend, cfg Config) *Server {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := Start("127.0.0.1:0", b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialTest(t *testing.T, s *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServerBasicOps(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{})
	conn := dialTest(t, s)
	for i, req := range []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpCreate, Create: &CreateRequest{Relation: "r", Columns: []string{"a:int"}}},
		{ID: 3, Op: OpQuery, Query: &QueryRequest{SQL: "SELECT 1"}},
		{ID: 4, Op: OpSchema, Schema: &SchemaRequest{Relation: "known"}},
		{ID: 5, Op: OpStatus},
	} {
		if err := WriteFrame(conn, req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Error != nil {
			t.Fatalf("op %d: %v", i, resp.Error)
		}
		if resp.ID != req.ID {
			t.Fatalf("op %d: response id %d for request %d", i, resp.ID, req.ID)
		}
	}
}

func TestServerErrorMapping(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{})
	conn := dialTest(t, s)
	cases := []struct {
		req  *Request
		code string
	}{
		{&Request{ID: 1, Op: "bogus"}, CodeBadRequest},
		{&Request{ID: 2, Op: OpQuery}, CodeBadRequest}, // missing payload
		{&Request{ID: 3, Op: OpSchema, Schema: &SchemaRequest{Relation: "nope"}}, CodeNotFound},
	}
	for _, tc := range cases {
		if err := WriteFrame(conn, tc.req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Error == nil || resp.Error.Code != tc.code {
			t.Fatalf("op %q: got %v, want code %s", tc.req.Op, resp.Error, tc.code)
		}
	}
	// Errors are accounted.
	if st := s.Stats(); st.Ops[OpSchema].Errors != 1 {
		t.Fatalf("schema errors = %d, want 1", st.Ops[OpSchema].Errors)
	}
}

// TestServerInternalErrorMapping: untyped backend errors become
// CodeInternal without killing the session.
func TestServerInternalErrorMapping(t *testing.T) {
	s := startTestServer(t, &stubBackend{queryErr: errors.New("boom")}, Config{})
	conn := dialTest(t, s)
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "x"}}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeInternal {
		t.Fatalf("got %v, want internal", resp.Error)
	}
	// Session still alive.
	if err := WriteFrame(conn, &Request{ID: 2, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	resp = Response{}
	if err := ReadFrame(conn, &resp); err != nil || resp.Error != nil {
		t.Fatalf("session died after error: %v %v", err, resp.Error)
	}
}

// TestUnencodableResultFailsRequestOnly: a query result JSON cannot
// carry (NaN float) turns into an internal error for that request; the
// session and pipelined requests survive.
func TestUnencodableResultFailsRequestOnly(t *testing.T) {
	s := startTestServer(t, &stubBackend{
		queryResp: &QueryResponse{Columns: []string{"x"}, Rows: AnyRows([][]any{{math.NaN()}})},
	}, Config{})
	conn := dialTest(t, s)
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "nan"}}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeInternal {
		t.Fatalf("got %v, want internal encode error", resp.Error)
	}
	if err := WriteFrame(conn, &Request{ID: 2, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	resp = Response{}
	if err := ReadFrame(conn, &resp); err != nil || resp.Error != nil || resp.ID != 2 {
		t.Fatalf("session died after unencodable result: %v %+v", err, resp)
	}
}

// TestPipelineCapBackpressure: a connection cannot hold more than
// MaxPipelinedRequests handlers; the reader stops consuming frames
// until responses drain, and all requests still complete.
func TestPipelineCapBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var started atomic.Int64
	s := startTestServer(t, &stubBackend{}, Config{
		MaxConcurrentQueries: 64,
		MaxPipelinedRequests: 2,
		OnQueryStart:         func() { started.Add(1); <-gate },
	})
	conn := dialTest(t, s)
	const N = 6
	for i := 1; i <= N; i++ {
		if err := WriteFrame(conn, &Request{ID: uint64(i), Op: OpQuery, Query: &QueryRequest{SQL: "q"}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := started.Load(); got > 2 {
		t.Fatalf("%d handlers started past the pipeline cap of 2", got)
	}
	close(gate)
	seen := 0
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for seen < N {
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatalf("after %d responses: %v", seen, err)
		}
		if resp.Error != nil {
			t.Fatalf("request %d: %v", resp.ID, resp.Error)
		}
		seen++
	}
}

// TestAdmissionControl proves the semaphore bounds concurrent query
// executions: 8 pipelined queries against a limit of 2 never run more
// than 2 at once, and the observed peak actually reaches the limit.
func TestAdmissionControl(t *testing.T) {
	var inFlight, peak, over atomic.Int64
	gate := make(chan struct{})
	b := &stubBackend{}
	s := startTestServer(t, b, Config{
		MaxConcurrentQueries: 2,
		OnQueryStart: func() {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			if n > 2 {
				over.Add(1)
			}
			<-gate
			inFlight.Add(-1)
		},
	})
	conn := dialTest(t, s)
	const N = 8
	for i := 1; i <= N; i++ {
		if err := WriteFrame(conn, &Request{ID: uint64(i), Op: OpQuery, Query: &QueryRequest{SQL: "q"}}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the first two executions start, then release everyone in waves.
	deadline := time.After(5 * time.Second)
	for inFlight.Load() < 2 {
		select {
		case <-deadline:
			t.Fatal("executions never reached the admission limit")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	seen := make(map[uint64]bool)
	for i := 0; i < N; i++ {
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Error != nil {
			t.Fatalf("query %d: %v", resp.ID, resp.Error)
		}
		seen[resp.ID] = true
	}
	if len(seen) != N {
		t.Fatalf("got %d distinct responses, want %d", len(seen), N)
	}
	if over.Load() > 0 {
		t.Fatalf("%d executions exceeded the admission limit", over.Load())
	}
	if peak.Load() != 2 {
		t.Fatalf("peak in-flight %d, want 2", peak.Load())
	}
	if st := s.Stats(); st.PeakInFlightQueries != 2 || st.MaxConcurrentQueries != 2 {
		t.Fatalf("status peak %d / max %d, want 2 / 2", st.PeakInFlightQueries, st.MaxConcurrentQueries)
	}
}

// TestRequestTimeout: a query slower than the server's RequestTimeout
// comes back as a timeout error, not a hung connection.
func TestRequestTimeout(t *testing.T) {
	s := startTestServer(t, &stubBackend{queryDelay: 10 * time.Second},
		Config{RequestTimeout: 50 * time.Millisecond})
	conn := dialTest(t, s)
	if err := WriteFrame(conn, &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "slow"}}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeTimeout {
		t.Fatalf("got %v, want timeout", resp.Error)
	}
}

// TestPerQueryTimeout: a client-requested budget below the server cap is
// honored.
func TestPerQueryTimeout(t *testing.T) {
	s := startTestServer(t, &stubBackend{queryDelay: 10 * time.Second}, Config{})
	conn := dialTest(t, s)
	req := &Request{ID: 1, Op: OpQuery, Query: &QueryRequest{SQL: "slow", TimeoutMs: 50}}
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeTimeout {
		t.Fatalf("got %v, want timeout", resp.Error)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("per-query timeout not honored")
	}
}

// TestPipelining: responses carry the right IDs even when a slow query
// is pipelined before fast ones (completion-order replies).
func TestPipelining(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	s := startTestServer(t, &stubBackend{}, Config{
		MaxConcurrentQueries: 4,
		OnQueryStart:         func() { once.Do(func() { <-gate }) }, // first query stalls
	})
	conn := dialTest(t, s)
	if err := WriteFrame(conn, &Request{ID: 100, Op: OpQuery, Query: &QueryRequest{SQL: "slow"}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let it occupy its slot
	if err := WriteFrame(conn, &Request{ID: 101, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 101 {
		t.Fatalf("fast request did not overtake: got id %d", resp.ID)
	}
	close(gate)
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 100 || resp.Error != nil {
		t.Fatalf("stalled query: id %d err %v", resp.ID, resp.Error)
	}
}

func TestServerCloseSeversSessions(t *testing.T) {
	s := startTestServer(t, &stubBackend{}, Config{})
	conn := dialTest(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp Response
	if err := ReadFrame(conn, &resp); err == nil {
		t.Fatal("read succeeded after server close")
	}
	if _, err := net.Dial("tcp", s.Addr().String()); err == nil {
		t.Fatal("dial succeeded after server close")
	}
}
