package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"orchestra/internal/keyspace"
)

func nodeIDs(n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("node%02d:900%d", i, i%10))
	}
	return ids
}

func mustNew(t *testing.T, n int, scheme Scheme, r int) *Table {
	t.Helper()
	tab, err := New(nodeIDs(n), scheme, r)
	if err != nil {
		t.Fatalf("New(%d, %v, %d): %v", n, scheme, r, err)
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Balanced, 3); err == nil {
		t.Error("empty membership should fail")
	}
	if _, err := New([]NodeID{"a", "a"}, Balanced, 3); err == nil {
		t.Error("duplicate members should fail")
	}
	if _, err := New([]NodeID{"a"}, Scheme(99), 3); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	for _, scheme := range []Scheme{Balanced, PastryStyle} {
		tab := mustNew(t, 1, scheme, 3)
		for i := 0; i < 50; i++ {
			k := keyspace.Hash([]byte(fmt.Sprintf("key%d", i)))
			if got := tab.Owner(k); got != nodeIDs(1)[0] {
				t.Fatalf("%v: owner(%s) = %s", scheme, k.Short(), got)
			}
		}
		if got := len(tab.Replicas(keyspace.Zero)); got != 1 {
			t.Errorf("%v: single node should have 1 replica, got %d", scheme, got)
		}
	}
}

func TestOwnershipPartition(t *testing.T) {
	// Every key has exactly one owner; the ranges reported by RangesOf
	// cover the ring disjointly.
	for _, scheme := range []Scheme{Balanced, PastryStyle} {
		for _, n := range []int{2, 3, 5, 16} {
			tab := mustNew(t, n, scheme, 3)
			covered := keyspace.Zero
			total := keyspace.Zero
			for _, id := range tab.Members() {
				for _, r := range tab.RangesOf(id) {
					total = total.Add(r.Size())
					_ = covered
				}
			}
			// Sum of all range sizes must be 2^160, i.e. 0 mod 2^160.
			if !total.IsZero() {
				t.Errorf("%v n=%d: ranges sum to %s, want full ring (0 mod 2^160)", scheme, n, total)
			}
			// Spot-check Owner agrees with RangesOf.
			for i := 0; i < 100; i++ {
				k := keyspace.Hash([]byte(fmt.Sprintf("k%d", i)))
				owner := tab.Owner(k)
				found := false
				for _, r := range tab.RangesOf(owner) {
					if r.Contains(k) {
						found = true
					}
				}
				if !found {
					t.Fatalf("%v n=%d: owner(%s)=%s but no owned range contains it", scheme, n, k.Short(), owner)
				}
			}
		}
	}
}

func TestBalancedIsUniform(t *testing.T) {
	for _, n := range []int{2, 5, 16, 100} {
		tab := mustNew(t, n, Balanced, 3)
		if b := tab.Balance(); b > 1.001 {
			t.Errorf("balanced n=%d: skew ratio %f, want ~1.0", n, b)
		}
	}
}

func TestPastryIsSkewedAtSmallN(t *testing.T) {
	// With a handful of nodes, hash positions are nonuniform with high
	// probability; the paper's Fig 2(a) example shows two nodes owning more
	// than 3/4 of the space. Just assert measurably worse than balanced.
	tab := mustNew(t, 5, PastryStyle, 3)
	if b := tab.Balance(); b < 1.2 {
		t.Errorf("pastry n=5: skew ratio %f suspiciously uniform", b)
	}
}

func TestBalancedOwnerMatchesDivideEvenly(t *testing.T) {
	n := 8
	tab := mustNew(t, n, Balanced, 3)
	starts, _ := keyspace.DivideEvenly(n)
	members := tab.Members() // hash order
	for i, s := range starts {
		if got := tab.Owner(s); got != members[i] {
			t.Errorf("owner(start[%d]) = %s, want %s", i, got, members[i])
		}
		// A key just below the next boundary belongs to the same node.
		var hi keyspace.Key
		if i+1 < n {
			hi = starts[i+1]
		}
		probe := hi.Sub(keyspace.FromUint64(1))
		if got := tab.Owner(probe); got != members[i] {
			t.Errorf("owner(end[%d]-1) = %s, want %s", i, got, members[i])
		}
	}
}

func TestReplicasProperties(t *testing.T) {
	tab := mustNew(t, 10, Balanced, 3)
	for i := 0; i < 50; i++ {
		k := keyspace.Hash([]byte(fmt.Sprintf("rk%d", i)))
		reps := tab.Replicas(k)
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %d", len(reps))
		}
		if reps[0] != tab.Owner(k) {
			t.Fatalf("owner must be first replica")
		}
		seen := map[NodeID]bool{}
		for _, r := range reps {
			if seen[r] {
				t.Fatalf("duplicate replica %s", r)
			}
			seen[r] = true
		}
	}
}

func TestReplicasAreRingNeighbors(t *testing.T) {
	tab := mustNew(t, 10, Balanced, 5)
	k := keyspace.Hash([]byte("neighbor-test"))
	reps := tab.Replicas(k)
	if len(reps) != 5 {
		t.Fatalf("want 5 replicas, got %d", len(reps))
	}
	ownerIdx, _ := tab.MemberIndex(reps[0])
	wantSet := map[NodeID]bool{}
	n := tab.Size()
	for d := -2; d <= 2; d++ {
		wantSet[tab.MemberAt((ownerIdx+d+n)%n)] = true
	}
	for _, r := range reps {
		if !wantSet[r] {
			t.Errorf("replica %s is not within 2 ring positions of owner", r)
		}
	}
}

func TestReplicasCappedByMembership(t *testing.T) {
	tab := mustNew(t, 2, Balanced, 5)
	if got := len(tab.Replicas(keyspace.Zero)); got != 2 {
		t.Errorf("2-node table should cap replicas at 2, got %d", got)
	}
}

func TestWithMembersBumpsVersion(t *testing.T) {
	tab := mustNew(t, 4, Balanced, 3)
	bigger, err := tab.WithMembers(nodeIDs(5))
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Version() <= tab.Version() {
		t.Errorf("version must grow: %d -> %d", tab.Version(), bigger.Version())
	}
	if bigger.Size() != 5 {
		t.Errorf("size = %d, want 5", bigger.Size())
	}
}

func TestWithoutNodesSplitsAmongReplicas(t *testing.T) {
	tab := mustNew(t, 8, Balanced, 3)
	members := tab.Members()
	victim := members[3]
	rec, err := tab.WithoutNodes([]NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Contains(victim) {
		t.Fatal("victim still a member of recovery table")
	}
	if rec.Size() != 7 {
		t.Fatalf("recovery table size = %d, want 7", rec.Size())
	}
	// Every key the victim owned must now be owned by one of its replicas.
	reps, err := tab.ReplicasOfNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	repSet := map[NodeID]bool{}
	for _, r := range reps[1:] { // exclude the victim itself
		repSet[r] = true
	}
	for _, r := range tab.RangesOf(victim) {
		// Probe several keys across the lost range.
		for f := 0; f < 8; f++ {
			k := r.Lo.Add(r.Size().Div(8).MulUint64(uint64(f)))
			if !r.Contains(k) {
				continue
			}
			heir := rec.Owner(k)
			if !repSet[heir] {
				t.Errorf("key %s reassigned to %s, not a replica of %s (replicas %v)",
					k.Short(), heir, victim, reps)
			}
		}
	}
	// Surviving nodes keep their ranges.
	for _, id := range members {
		if id == victim {
			continue
		}
		for _, r := range tab.RangesOf(id) {
			if got := rec.Owner(r.Lo); got != id {
				t.Errorf("survivor %s lost range %v to %s", id, r, got)
			}
		}
	}
}

func TestWithoutNodesSplitIsEven(t *testing.T) {
	tab := mustNew(t, 8, Balanced, 3)
	victim := tab.Members()[2]
	rec, err := tab.WithoutNodes([]NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	// The two surviving replicas should each take about half the lost range.
	lost := tab.RangesOf(victim)[0]
	perHeir := map[NodeID]uint64{}
	const probes = 1024
	step := lost.Size().Div(probes)
	k := lost.Lo
	for i := 0; i < probes; i++ {
		perHeir[rec.Owner(k)]++
		k = k.Add(step)
	}
	if len(perHeir) != 2 {
		t.Fatalf("lost range split among %d heirs, want 2: %v", len(perHeir), perHeir)
	}
	for id, c := range perHeir {
		frac := float64(c) / probes
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("heir %s took fraction %.3f of the lost range, want ~0.5", id, frac)
		}
	}
}

func TestWithoutNodesErrors(t *testing.T) {
	tab := mustNew(t, 3, Balanced, 3)
	if _, err := tab.WithoutNodes([]NodeID{"nonexistent"}); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := tab.WithoutNodes(tab.Members()); err == nil {
		t.Error("removing all nodes should error")
	}
	same, err := tab.WithoutNodes(nil)
	if err != nil || same != tab {
		t.Error("removing nothing should return the same table")
	}
}

func TestDiffReportsExactlyLostRanges(t *testing.T) {
	tab := mustNew(t, 6, Balanced, 3)
	victim := tab.Members()[4]
	rec, err := tab.WithoutNodes([]NodeID{victim})
	if err != nil {
		t.Fatal(err)
	}
	moves := Diff(tab, rec)
	if len(moves) == 0 {
		t.Fatal("expected moves after failure")
	}
	lost := tab.RangesOf(victim)
	var lostSize, movedSize keyspace.Key
	for _, r := range lost {
		lostSize = lostSize.Add(r.Size())
	}
	for _, m := range moves {
		if m.From != victim {
			t.Errorf("move %v has From=%s, want %s", m.Range, m.From, victim)
		}
		if !rec.Contains(m.To) {
			t.Errorf("move target %s not in recovery table", m.To)
		}
		movedSize = movedSize.Add(m.Range.Size())
	}
	if lostSize != movedSize {
		t.Errorf("moved size %s != lost size %s", movedSize.Short(), lostSize.Short())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{Balanced, PastryStyle} {
		tab := mustNew(t, 7, scheme, 3)
		data, err := tab.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalTable(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != tab.String() {
			t.Errorf("round trip mismatch:\n got %s\nwant %s", got, tab)
		}
		if got.Version() != tab.Version() || got.Scheme() != tab.Scheme() ||
			got.ReplicationFactor() != tab.ReplicationFactor() {
			t.Error("metadata mismatch after round trip")
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalTable(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := UnmarshalTable([]byte{1, 2, 3}); err == nil {
		t.Error("short input should fail")
	}
	tab := mustNew(t, 3, Balanced, 2)
	data, _ := tab.MarshalBinary()
	if _, err := UnmarshalTable(data[:len(data)-5]); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestPropOwnerConsistentAfterRoundTrip(t *testing.T) {
	tab := mustNew(t, 9, Balanced, 3)
	data, _ := tab.MarshalBinary()
	got, err := UnmarshalTable(data)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k keyspace.Key) bool {
		return got.Owner(k) == tab.Owner(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropReplicasContainOwner(t *testing.T) {
	tab := mustNew(t, 12, PastryStyle, 3)
	f := func(k keyspace.Key) bool {
		reps := tab.Replicas(k)
		return len(reps) == 3 && reps[0] == tab.Owner(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropRecoveryTableCoversRing(t *testing.T) {
	tab := mustNew(t, 10, Balanced, 3)
	rec, err := tab.WithoutNodes([]NodeID{tab.Members()[0], tab.Members()[5]})
	if err != nil {
		t.Fatal(err)
	}
	f := func(k keyspace.Key) bool {
		o := rec.Owner(k)
		return rec.Contains(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSuccessiveFailures(t *testing.T) {
	// The recovery table must support further failures (non-contiguous
	// ownership), as longer queries may lose several nodes.
	tab := mustNew(t, 8, Balanced, 3)
	cur := tab
	members := tab.Members()
	for i := 0; i < 4; i++ {
		var err error
		cur, err = cur.WithoutNodes([]NodeID{members[i]})
		if err != nil {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if cur.Size() != 4 {
		t.Fatalf("size after 4 failures = %d", cur.Size())
	}
	// Ring must still be fully covered.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var k keyspace.Key
		r.Read(k[:])
		if !cur.Contains(cur.Owner(k)) {
			t.Fatal("owner not a member")
		}
	}
}
