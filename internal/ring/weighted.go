package ring

import (
	"errors"
	"fmt"
	"sort"

	"orchestra/internal/keyspace"
)

// This file implements the load-balancing extension the paper lists as
// future work (§VIII): "implement automatic load-balancing by adjusting
// the routing table, to compensate for unequal network bandwidth or
// available machine resources". Instead of dividing the key space into
// equal ranges, NewWeighted divides it proportionally to per-node capacity
// weights, so a node with twice the capacity owns twice the key space —
// and therefore roughly twice the data and twice the query work under
// uniform hashing.

// Weight expresses a node's relative capacity (CPU, disk, or bandwidth —
// whatever resource the deployment is bound on).
type Weight struct {
	ID       NodeID
	Capacity float64
}

// ErrBadWeight is returned for non-positive capacities.
var ErrBadWeight = errors.New("ring: capacities must be positive")

// NewWeighted builds a routing table whose contiguous ranges are sized
// proportionally to each node's capacity. Nodes are still placed in hash
// order (so the assignment is deterministic and independent of the weight
// list's order), preserving the single-contiguous-range property that the
// storage layer's colocation optimization depends on (§III-A).
func NewWeighted(weights []Weight, replication int) (*Table, error) {
	if len(weights) == 0 {
		return nil, ErrNoMembers
	}
	if replication < 1 {
		replication = 1
	}
	total := 0.0
	seen := make(map[NodeID]bool, len(weights))
	for _, w := range weights {
		if w.Capacity <= 0 {
			return nil, fmt.Errorf("%w: %s has %v", ErrBadWeight, w.ID, w.Capacity)
		}
		if seen[w.ID] {
			return nil, fmt.Errorf("ring: duplicate node %q", w.ID)
		}
		seen[w.ID] = true
		total += w.Capacity
	}

	members := make([]Member, len(weights))
	capOf := make(map[NodeID]float64, len(weights))
	for i, w := range weights {
		members[i] = Member{ID: w.ID, Hash: w.ID.Hash()}
		capOf[w.ID] = w.Capacity
	}
	sort.Slice(members, func(i, j int) bool {
		return members[i].Hash.Less(members[j].Hash)
	})

	t := &Table{
		version: 1,
		scheme:  Balanced, // weighted allocation is a balanced-scheme variant
		repl:    replication,
		members: members,
		byID:    make(map[NodeID]int, len(members)),
	}
	for i, m := range members {
		t.byID[m.ID] = i
	}

	// Walk the ring assigning each node (in hash order) a contiguous range
	// sized by its share of the total capacity. Range starts are computed
	// as cumulative fractions of the key space scaled into the top 64 bits
	// (ample resolution for dozens-to-hundreds of nodes).
	start := keyspace.Zero
	cum := 0.0
	for i, m := range members {
		t.entries = append(t.entries, entry{start: start, owner: i})
		cum += capOf[m.ID] / total
		if i < len(members)-1 {
			start = keyspace.FromFraction(cum)
		}
	}
	return t, nil
}

// CapacityShares reports each member's owned fraction of the key space —
// used by tests and the load-balancing ablation to verify proportionality.
func (t *Table) CapacityShares() map[NodeID]float64 {
	shares := make(map[NodeID]float64, len(t.members))
	for i, e := range t.entries {
		next := t.entries[(i+1)%len(t.entries)].start
		sz := Range{Lo: e.start, Hi: next}.Size()
		shares[t.members[e.owner].ID] += float64(sz.Top64()) / float64(^uint64(0))
	}
	return shares
}
