package ring

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"orchestra/internal/keyspace"
)

func TestWeightedProportionalShares(t *testing.T) {
	weights := []Weight{
		{ID: "slow", Capacity: 1},
		{ID: "medium", Capacity: 2},
		{ID: "fast", Capacity: 4},
	}
	tbl, err := NewWeighted(weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	shares := tbl.CapacityShares()
	total := 1.0 + 2 + 4
	for _, w := range weights {
		want := w.Capacity / total
		if got := shares[w.ID]; math.Abs(got-want) > 0.01 {
			t.Fatalf("%s share %f, want %f", w.ID, got, want)
		}
	}
}

func TestWeightedEqualMatchesBalanced(t *testing.T) {
	ids := []NodeID{"a", "b", "c", "d", "e"}
	var weights []Weight
	for _, id := range ids {
		weights = append(weights, Weight{ID: id, Capacity: 3})
	}
	wt, err := NewWeighted(weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := wt.Balance(); r > 1.01 {
		t.Fatalf("equal weights should be uniform, ratio %f", r)
	}
	// Ownership lookups agree with the unweighted balanced table for a
	// sample of keys (both divide evenly in hash order).
	bt, err := New(ids, Balanced, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		var k [20]byte
		rng.Read(k[:])
		key := keyFromBytes(k[:])
		if wt.Owner(key) != bt.Owner(key) {
			t.Fatalf("owners diverge at %v: %s vs %s", key, wt.Owner(key), bt.Owner(key))
		}
	}
}

func TestWeightedProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			n := 2 + rng.Intn(12)
			ws := make([]Weight, n)
			for i := range ws {
				ws[i] = Weight{
					ID:       NodeID(fmt.Sprintf("n%02d", i)),
					Capacity: 0.5 + rng.Float64()*9.5,
				}
			}
			vals[0] = reflect.ValueOf(ws)
		},
	}
	f := func(ws []Weight) bool {
		tbl, err := NewWeighted(ws, 3)
		if err != nil {
			return false
		}
		// Shares sum to 1 and each is proportional within float tolerance.
		shares := tbl.CapacityShares()
		total := 0.0
		capTotal := 0.0
		for _, w := range ws {
			capTotal += w.Capacity
		}
		for _, w := range ws {
			s := shares[w.ID]
			total += s
			if math.Abs(s-w.Capacity/capTotal) > 0.02 {
				return false
			}
		}
		if math.Abs(total-1) > 0.01 {
			return false
		}
		// Every key has an owner that is a member, and contiguity holds:
		// each member owns exactly one range (entry merge invariant).
		owners := map[NodeID]int{}
		for _, r := range tbl.Ranges() {
			owners[r.Owner]++
		}
		for id, count := range owners {
			// The first member may own a wrapped range split across the
			// ring origin; all others own exactly one.
			if count > 2 {
				return false
			}
			if !tbl.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func keyFromBytes(b []byte) (k keyspace.Key) {
	copy(k[:], b)
	return k
}

func TestWeightedErrors(t *testing.T) {
	if _, err := NewWeighted(nil, 3); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewWeighted([]Weight{{ID: "a", Capacity: 0}}, 3); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewWeighted([]Weight{{ID: "a", Capacity: -1}}, 3); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewWeighted([]Weight{
		{ID: "a", Capacity: 1}, {ID: "a", Capacity: 2},
	}, 3); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestWeightedSurvivesFailures(t *testing.T) {
	// WithoutNodes works on weighted tables too: survivors keep ranges,
	// heirs split the failed node's range.
	weights := []Weight{
		{ID: "a", Capacity: 1}, {ID: "b", Capacity: 2},
		{ID: "c", Capacity: 3}, {ID: "d", Capacity: 4},
	}
	tbl, err := NewWeighted(weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := tbl.WithoutNodes([]NodeID{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if nt.Contains("c") || nt.Size() != 3 {
		t.Fatalf("bad recovery table: %v", nt)
	}
	// Survivors' own ranges are untouched.
	for _, id := range []NodeID{"a", "b", "d"} {
		for _, r := range tbl.RangesOf(id) {
			if nt.Owner(r.Lo) != id {
				t.Fatalf("%s lost its range start", id)
			}
		}
	}
}
