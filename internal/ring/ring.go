// Package ring implements the hashing-based data partitioning substrate of
// paper §III: node membership, range allocation over the 160-bit key space,
// complete (single-hop) routing tables with immutable snapshots, and replica
// placement.
//
// Two allocation schemes are provided. Pastry-style allocation places each
// node at the SHA-1 hash of its address and assigns every key to the node
// with the nearest hash (Fig 2a); with dozens of nodes this yields highly
// non-uniform ranges. Balanced allocation — the scheme used for all of the
// paper's experiments — divides the key space into evenly sized sequential
// ranges, one per node, assigned in order of node hash ID (Fig 2b).
//
// Tables are immutable: distributed computations operate on a snapshot of the
// routing table taken by the query initiator, so nodes that join mid-query
// never participate in it, and node failures are handled by deriving an
// explicit recovery table (WithoutNodes) rather than by silent rerouting
// (§III-C, §V-C).
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/keyspace"
)

// NodeID identifies a node: an opaque address string (e.g. "host:port" for
// the TCP transport or "node3" for the simulated transport). A node's
// position on the ring is the SHA-1 hash of its NodeID.
type NodeID string

// Hash returns the ring position of the node.
func (id NodeID) Hash() keyspace.Key {
	return keyspace.Hash([]byte(id))
}

// Scheme selects the range allocation policy.
type Scheme int

const (
	// Balanced divides the key space into equal sequential ranges assigned
	// to nodes in hash order (the paper's experimental configuration).
	Balanced Scheme = iota
	// PastryStyle assigns each key to the node with the nearest hash ID.
	PastryStyle
)

func (s Scheme) String() string {
	switch s {
	case Balanced:
		return "balanced"
	case PastryStyle:
		return "pastry"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Member is a node together with its ring position.
type Member struct {
	ID   NodeID
	Hash keyspace.Key
}

// Range is a half-open clockwise interval [Lo, Hi) of the key space.
// Lo == Hi denotes the full ring.
type Range struct {
	Lo, Hi keyspace.Key
}

// Contains reports whether k lies within the range.
func (r Range) Contains(k keyspace.Key) bool {
	return k.InRange(r.Lo, r.Hi)
}

// Size returns the clockwise extent of the range. A full ring reports the
// maximum key (2^160-1) as an approximation, since 2^160 is not
// representable.
func (r Range) Size() keyspace.Key {
	if r.Lo == r.Hi {
		return keyspace.Max
	}
	return r.Hi.Sub(r.Lo)
}

func (r Range) String() string {
	return fmt.Sprintf("[%s,%s)", r.Lo.Short(), r.Hi.Short())
}

// entry maps the range starting at start to the member with index owner.
type entry struct {
	start keyspace.Key
	owner int
}

// Table is an immutable routing table: the complete membership (recent
// peer-to-peer research shows a complete table gives superior performance up
// to thousands of nodes, §III-B) plus the assignment of key ranges to nodes.
type Table struct {
	version uint64
	scheme  Scheme
	repl    int
	members []Member // sorted by Hash
	byID    map[NodeID]int
	entries []entry // sorted by start key
}

// ErrNoMembers is returned when constructing a table with no nodes.
var ErrNoMembers = errors.New("ring: table requires at least one member")

// ErrUnknownNode is returned when an operation references a node that is not
// a member of the table.
var ErrUnknownNode = errors.New("ring: unknown node")

// New builds a routing table over the given nodes using the scheme.
// replication is the total number of copies (r) kept of each data item;
// it is capped at the member count.
func New(ids []NodeID, scheme Scheme, replication int) (*Table, error) {
	return newVersion(ids, scheme, replication, 1)
}

func newVersion(ids []NodeID, scheme Scheme, replication int, version uint64) (*Table, error) {
	if len(ids) == 0 {
		return nil, ErrNoMembers
	}
	if replication < 1 {
		replication = 1
	}
	seen := make(map[NodeID]bool, len(ids))
	members := make([]Member, 0, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("ring: duplicate node %q", id)
		}
		seen[id] = true
		members = append(members, Member{ID: id, Hash: id.Hash()})
	}
	sort.Slice(members, func(i, j int) bool {
		return members[i].Hash.Less(members[j].Hash)
	})
	t := &Table{
		version: version,
		scheme:  scheme,
		repl:    replication,
		members: members,
		byID:    make(map[NodeID]int, len(members)),
	}
	for i, m := range members {
		t.byID[m.ID] = i
	}
	switch scheme {
	case Balanced:
		starts, err := keyspace.DivideEvenly(len(members))
		if err != nil {
			return nil, err
		}
		for i, s := range starts {
			t.entries = append(t.entries, entry{start: s, owner: i})
		}
	case PastryStyle:
		n := len(members)
		for i := 0; i < n; i++ {
			prev := members[(i-1+n)%n]
			// Start of node i's range: the clockwise midpoint between the
			// previous node's hash and this node's hash.
			var start keyspace.Key
			if n == 1 {
				start = keyspace.Zero
			} else {
				arc := members[i].Hash.Sub(prev.Hash)
				start = prev.Hash.Add(arc.Half())
			}
			t.entries = append(t.entries, entry{start: start, owner: i})
		}
		sort.Slice(t.entries, func(i, j int) bool {
			return t.entries[i].start.Less(t.entries[j].start)
		})
	default:
		return nil, fmt.Errorf("ring: unknown scheme %v", scheme)
	}
	return t, nil
}

// Version returns the table's version number; derived tables (WithMembers,
// WithoutNodes) always carry a larger version.
func (t *Table) Version() uint64 { return t.version }

// Scheme returns the allocation scheme.
func (t *Table) Scheme() Scheme { return t.scheme }

// ReplicationFactor returns the configured total copy count r.
func (t *Table) ReplicationFactor() int { return t.repl }

// Size returns the number of member nodes.
func (t *Table) Size() int { return len(t.members) }

// Members returns the node IDs in hash order. The slice is fresh and may be
// modified by the caller.
func (t *Table) Members() []NodeID {
	out := make([]NodeID, len(t.members))
	for i, m := range t.members {
		out[i] = m.ID
	}
	return out
}

// Contains reports whether id is a member.
func (t *Table) Contains(id NodeID) bool {
	_, ok := t.byID[id]
	return ok
}

// MemberIndex returns the index of id in hash order.
func (t *Table) MemberIndex(id NodeID) (int, bool) {
	i, ok := t.byID[id]
	return i, ok
}

// MemberAt returns the node at hash-order index i.
func (t *Table) MemberAt(i int) NodeID { return t.members[i].ID }

// ownerEntry returns the index into entries of the range containing k.
func (t *Table) ownerEntry(k keyspace.Key) int {
	// Find the last entry with start <= k; if none, the table wraps and the
	// key belongs to the final entry.
	i := sort.Search(len(t.entries), func(i int) bool {
		return k.Less(t.entries[i].start)
	})
	// entries[i-1].start <= k < entries[i].start
	if i == 0 {
		return len(t.entries) - 1 // wrapped
	}
	return i - 1
}

// Owner returns the node responsible for key k.
func (t *Table) Owner(k keyspace.Key) NodeID {
	return t.members[t.entries[t.ownerEntry(k)].owner].ID
}

// OwnerIndex returns the hash-order member index responsible for key k.
func (t *Table) OwnerIndex(k keyspace.Key) int {
	return t.entries[t.ownerEntry(k)].owner
}

// RangesOf returns the ranges owned by node id, in start-key order.
func (t *Table) RangesOf(id NodeID) []Range {
	idx, ok := t.byID[id]
	if !ok {
		return nil
	}
	var out []Range
	for i, e := range t.entries {
		if e.owner != idx {
			continue
		}
		next := t.entries[(i+1)%len(t.entries)].start
		out = append(out, Range{Lo: e.start, Hi: next})
	}
	return out
}

// Ranges returns every (range, owner) pair in start order.
func (t *Table) Ranges() []struct {
	Range Range
	Owner NodeID
} {
	out := make([]struct {
		Range Range
		Owner NodeID
	}, len(t.entries))
	for i, e := range t.entries {
		next := t.entries[(i+1)%len(t.entries)].start
		out[i].Range = Range{Lo: e.start, Hi: next}
		out[i].Owner = t.members[e.owner].ID
	}
	return out
}

// Replicas returns the nodes holding copies of the data for key k: the owner
// plus ⌊r/2⌋ members clockwise and ⌊r/2⌋ counterclockwise from it in ring
// order (paper §III-C, following Pastry's replica placement). The owner is
// always first. At most Size() distinct nodes are returned.
func (t *Table) Replicas(k keyspace.Key) []NodeID {
	owner := t.OwnerIndex(k)
	return t.replicaIndices(owner)
}

func (t *Table) replicaIndices(owner int) []NodeID {
	n := len(t.members)
	half := t.repl / 2
	out := []NodeID{t.members[owner].ID}
	seen := map[int]bool{owner: true}
	for i := 1; i <= half && len(out) < n && len(out) < t.repl+half; i++ {
		cw := (owner + i) % n
		if !seen[cw] {
			seen[cw] = true
			out = append(out, t.members[cw].ID)
		}
		ccw := (owner - i + n*i) % n // n*i keeps the operand positive
		if !seen[ccw] {
			seen[ccw] = true
			out = append(out, t.members[ccw].ID)
		}
	}
	// Cap at r total copies (or n if fewer members than r).
	if len(out) > t.repl {
		out = out[:t.repl]
	}
	return out
}

// ReplicasOfNode returns the replica set shared by every key the node owns
// under scheme-derived tables (where each node owns one contiguous range).
func (t *Table) ReplicasOfNode(id NodeID) ([]NodeID, error) {
	idx, ok := t.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	return t.replicaIndices(idx), nil
}

// IsReplica reports whether node id holds a copy of key k.
func (t *Table) IsReplica(id NodeID, k keyspace.Key) bool {
	for _, r := range t.Replicas(k) {
		if r == id {
			return true
		}
	}
	return false
}

// WithMembers builds a fresh table (next version) over a new node set,
// re-allocating ranges with the same scheme. This is the membership-change
// path for node arrival: a new node only participates once a fresh snapshot
// is taken (§V-C).
func (t *Table) WithMembers(ids []NodeID) (*Table, error) {
	return newVersion(ids, t.scheme, t.repl, t.version+1)
}

// WithoutNodes derives the recovery table used for incremental
// recomputation after the given nodes fail (§V-D): surviving nodes keep
// their ranges, and each failed node's ranges are split evenly among its
// surviving replicas, which hold copies of the failed node's base data.
func (t *Table) WithoutNodes(failed []NodeID) (*Table, error) {
	failedSet := make(map[int]bool, len(failed))
	for _, id := range failed {
		idx, ok := t.byID[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
		}
		failedSet[idx] = true
	}
	if len(failedSet) >= len(t.members) {
		return nil, errors.New("ring: all nodes failed")
	}
	if len(failedSet) == 0 {
		return t, nil
	}

	// Survivor member list.
	var surviveIDs []NodeID
	for _, m := range t.members {
		if !failedSet[t.byID[m.ID]] {
			surviveIDs = append(surviveIDs, m.ID)
		}
	}
	nt := &Table{
		version: t.version + 1,
		scheme:  t.scheme,
		repl:    t.repl,
		byID:    make(map[NodeID]int, len(surviveIDs)),
	}
	for _, id := range surviveIDs {
		nt.members = append(nt.members, Member{ID: id, Hash: id.Hash()})
	}
	sort.Slice(nt.members, func(i, j int) bool {
		return nt.members[i].Hash.Less(nt.members[j].Hash)
	})
	for i, m := range nt.members {
		nt.byID[m.ID] = i
	}

	for i, e := range t.entries {
		next := t.entries[(i+1)%len(t.entries)].start
		rng := Range{Lo: e.start, Hi: next}
		if !failedSet[e.owner] {
			nt.entries = append(nt.entries, entry{start: rng.Lo, owner: nt.byID[t.members[e.owner].ID]})
			continue
		}
		// Failed owner: split the range evenly among surviving replicas of
		// this key range under the ORIGINAL table, which are exactly the
		// nodes guaranteed to hold its base data.
		var heirs []int
		for _, rid := range t.replicaIndices(e.owner) {
			idx := t.byID[rid]
			if !failedSet[idx] {
				heirs = append(heirs, nt.byID[rid])
			}
		}
		if len(heirs) == 0 {
			// Data is lost with r=1 or all replicas failed; fall back to an
			// arbitrary survivor so that queries terminate (they will
			// observe missing base data, which the versioned store reports
			// explicitly).
			heirs = []int{0}
		}
		size := rng.Size()
		step := size.Div(uint64(len(heirs)))
		lo := rng.Lo
		for h := 0; h < len(heirs); h++ {
			nt.entries = append(nt.entries, entry{start: lo, owner: heirs[h]})
			lo = lo.Add(step)
		}
	}
	sort.Slice(nt.entries, func(i, j int) bool {
		return nt.entries[i].start.Less(nt.entries[j].start)
	})
	// Merge adjacent entries with the same owner to keep the table small.
	merged := nt.entries[:0]
	for _, e := range nt.entries {
		if len(merged) > 0 && merged[len(merged)-1].owner == e.owner {
			continue
		}
		merged = append(merged, e)
	}
	nt.entries = merged
	return nt, nil
}

// Diff returns the ranges whose ownership differs between t and newer, with
// the old and new owners. The query initiator uses this to determine which
// portions of a computation must be redone after a failure (§V-A).
func Diff(old, newer *Table) []RangeMove {
	// Collect all boundary points from both tables.
	boundarySet := make(map[keyspace.Key]bool)
	for _, e := range old.entries {
		boundarySet[e.start] = true
	}
	for _, e := range newer.entries {
		boundarySet[e.start] = true
	}
	boundaries := make([]keyspace.Key, 0, len(boundarySet))
	for k := range boundarySet {
		boundaries = append(boundaries, k)
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i].Less(boundaries[j]) })

	var moves []RangeMove
	for i, lo := range boundaries {
		hi := boundaries[(i+1)%len(boundaries)]
		oldOwner := old.Owner(lo)
		newOwner := newer.Owner(lo)
		if oldOwner != newOwner {
			moves = append(moves, RangeMove{
				Range: Range{Lo: lo, Hi: hi},
				From:  oldOwner,
				To:    newOwner,
			})
		}
	}
	return moves
}

// RangeMove records a change of range ownership between table versions.
type RangeMove struct {
	Range Range
	From  NodeID
	To    NodeID
}

// Balance returns the ratio of the largest owned key-space share to the
// smallest across members (1.0 is perfectly uniform). This quantifies the
// skew illustrated in Fig 2: Pastry-style allocation can leave one node with
// a large multiple of another's share, while balanced allocation is uniform.
func (t *Table) Balance() float64 {
	sizes := make(map[int]float64)
	for i, e := range t.entries {
		next := t.entries[(i+1)%len(t.entries)].start
		sz := Range{Lo: e.start, Hi: next}.Size()
		// Use the top 64 bits as a float approximation of the share.
		sizes[e.owner] += float64(sz.Top64())
	}
	minSz, maxSz := -1.0, 0.0
	for i := range t.members {
		s := sizes[i]
		if minSz < 0 || s < minSz {
			minSz = s
		}
		if s > maxSz {
			maxSz = s
		}
	}
	if minSz <= 0 {
		return float64(len(t.members)) * maxSz // effectively unbounded skew
	}
	return maxSz / minSz
}

func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ring v%d %s r=%d {", t.version, t.scheme, t.repl)
	for i, e := range t.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s→%s", e.start.Short(), t.members[e.owner].ID)
	}
	b.WriteString("}")
	return b.String()
}

// MarshalBinary encodes the table for dissemination with query plans.
func (t *Table) MarshalBinary() ([]byte, error) {
	var buf []byte
	var tmp [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	putU64(t.version)
	putU64(uint64(t.scheme))
	putU64(uint64(t.repl))
	putU64(uint64(len(t.members)))
	for _, m := range t.members {
		putU64(uint64(len(m.ID)))
		buf = append(buf, m.ID...)
	}
	putU64(uint64(len(t.entries)))
	for _, e := range t.entries {
		buf = append(buf, e.start[:]...)
		putU64(uint64(e.owner))
	}
	return buf, nil
}

// UnmarshalTable decodes a table encoded with MarshalBinary.
func UnmarshalTable(data []byte) (*Table, error) {
	off := 0
	getU64 := func() (uint64, error) {
		if off+8 > len(data) {
			return 0, errors.New("ring: truncated table encoding")
		}
		v := binary.BigEndian.Uint64(data[off:])
		off += 8
		return v, nil
	}
	version, err := getU64()
	if err != nil {
		return nil, err
	}
	scheme, err := getU64()
	if err != nil {
		return nil, err
	}
	repl, err := getU64()
	if err != nil {
		return nil, err
	}
	nMembers, err := getU64()
	if err != nil {
		return nil, err
	}
	if nMembers == 0 || nMembers > 1<<20 {
		return nil, fmt.Errorf("ring: implausible member count %d", nMembers)
	}
	t := &Table{
		version: version,
		scheme:  Scheme(scheme),
		repl:    int(repl),
		byID:    make(map[NodeID]int, nMembers),
	}
	for i := uint64(0); i < nMembers; i++ {
		l, err := getU64()
		if err != nil {
			return nil, err
		}
		if off+int(l) > len(data) {
			return nil, errors.New("ring: truncated member id")
		}
		id := NodeID(data[off : off+int(l)])
		off += int(l)
		t.members = append(t.members, Member{ID: id, Hash: id.Hash()})
		t.byID[id] = int(i)
	}
	nEntries, err := getU64()
	if err != nil {
		return nil, err
	}
	if nEntries == 0 || nEntries > 1<<22 {
		return nil, fmt.Errorf("ring: implausible entry count %d", nEntries)
	}
	for i := uint64(0); i < nEntries; i++ {
		if off+keyspace.Size > len(data) {
			return nil, errors.New("ring: truncated entry key")
		}
		var k keyspace.Key
		copy(k[:], data[off:])
		off += keyspace.Size
		owner, err := getU64()
		if err != nil {
			return nil, err
		}
		if owner >= nMembers {
			return nil, fmt.Errorf("ring: entry owner %d out of range", owner)
		}
		t.entries = append(t.entries, entry{start: k, owner: int(owner)})
	}
	return t, nil
}
