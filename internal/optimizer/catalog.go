// Package optimizer implements ORCHESTRA's query optimizer (paper §VI
// "Query Optimizer"): a Volcano-style [18] transformational optimizer for
// single-block SQL, using top-down enumeration of plans with memoization
// and branch-and-bound pruning, considering bushy as well as linear join
// trees. Costs are estimated from machine CPU/disk rates and bandwidth,
// assuming each horizontally partitioned relation is evenly distributed by
// the storage layer across all nodes, and costing each stage at the
// slowest node or link that must be used.
package optimizer

import (
	"orchestra/internal/tuple"
)

// TableStats summarizes a relation for cardinality estimation.
type TableStats struct {
	// Rows is the (estimated) tuple count.
	Rows int64
	// Distinct estimates distinct values per column name. Missing columns
	// default to Rows for key columns and Rows/10 otherwise.
	Distinct map[string]int64
}

// Catalog resolves table schemas and statistics for the optimizer.
type Catalog interface {
	// Schema returns the relation's schema, or an error if unknown.
	Schema(table string) (*tuple.Schema, error)
	// Stats returns statistics for the relation; a zero value is allowed.
	Stats(table string) TableStats
}

// MapCatalog is a Catalog backed by in-memory maps (used by tests and by
// the facade, which caches schemas fetched from the cluster).
type MapCatalog struct {
	Schemas map[string]*tuple.Schema
	Tables  map[string]TableStats
}

// Schema implements Catalog.
func (c *MapCatalog) Schema(table string) (*tuple.Schema, error) {
	if s, ok := c.Schemas[table]; ok {
		return s, nil
	}
	return nil, &UnknownTableError{Table: table}
}

// Stats implements Catalog.
func (c *MapCatalog) Stats(table string) TableStats {
	return c.Tables[table]
}

// UnknownTableError reports a FROM reference with no catalog entry.
type UnknownTableError struct{ Table string }

func (e *UnknownTableError) Error() string {
	return "optimizer: unknown table " + e.Table
}

// Environment models the execution substrate for costing, per the paper:
// previously measured CPU and disk rates plus pairwise bandwidth, with
// each stage costed at the slowest participating node or link.
type Environment struct {
	// Nodes is the cluster size (horizontal partitions per relation).
	Nodes int
	// TupleCPU is seconds of CPU per tuple processed at the slowest node.
	TupleCPU float64
	// TupleDisk is seconds per tuple scanned from local storage.
	TupleDisk float64
	// LinkBytesPerSec is the slowest inter-node link's bandwidth.
	LinkBytesPerSec float64
	// InitiatorBytesPerSec is the query initiator's inbound bandwidth (the
	// bottleneck when large results are collected, as in STBench Copy).
	InitiatorBytesPerSec float64
}

// WithDefaults fills unset fields with values calibrated for commodity
// nodes on a gigabit LAN.
func (e Environment) WithDefaults() Environment {
	if e.Nodes <= 0 {
		e.Nodes = 1
	}
	if e.TupleCPU <= 0 {
		e.TupleCPU = 1e-6
	}
	if e.TupleDisk <= 0 {
		e.TupleDisk = 2e-6
	}
	if e.LinkBytesPerSec <= 0 {
		e.LinkBytesPerSec = 100e6
	}
	if e.InitiatorBytesPerSec <= 0 {
		e.InitiatorBytesPerSec = e.LinkBytesPerSec
	}
	return e
}

// columnWidth estimates encoded bytes for a column type.
func columnWidth(t tuple.Type) float64 {
	switch t {
	case tuple.Int64:
		return 9
	case tuple.Float64:
		return 9
	case tuple.String:
		return 27 // the paper's STBench tables carry 25-char strings
	default:
		return 9
	}
}
