package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
)

// Info reports what the optimizer decided, for logging and EXPERIMENTS.
type Info struct {
	// Cost is the modeled completion time (seconds) of the chosen plan.
	Cost float64
	// Rows is the estimated result cardinality.
	Rows float64
	// JoinOrder is a textual rendering of the chosen join tree.
	JoinOrder string
	// GroupsExplored counts memo groups materialized during search.
	GroupsExplored int
	// AggMode records the chosen aggregation strategy ("", "partial",
	// "complete").
	AggMode string
}

// Build optimizes a parsed single-block query into a distributed engine
// plan. The search is top-down over table subsets with memoization; within
// each memo group, alternatives are kept per partitioning property and
// dominated candidates are pruned (branch-and-bound at the group level).
// Bushy join trees are considered.
func Build(q *sql.Query, cat Catalog, env Environment) (*engine.Plan, *Info, error) {
	env = env.WithDefaults()
	b, err := bind(q, cat)
	if err != nil {
		return nil, nil, err
	}
	s := &search{b: b, env: env, memo: make(map[uint32]map[string]*candidate)}

	full := uint32(1)<<len(b.tables) - 1
	alts := s.optimize(full)
	best := cheapest(alts)
	if best == nil {
		return nil, nil, fmt.Errorf("optimizer: no plan found")
	}

	info := &Info{
		Cost:           best.cost,
		Rows:           best.rows,
		JoinOrder:      best.order,
		GroupsExplored: len(s.memo),
	}
	plan, err := s.lower(q, best, info)
	if err != nil {
		return nil, nil, err
	}
	if err := plan.Finalize(); err != nil {
		return nil, nil, err
	}
	info.Rows = best.rows
	return plan, info, nil
}

// candidate is one physical alternative for a memo group.
type candidate struct {
	node  engine.Node
	cols  []colID // output layout (base columns, in row order)
	rows  float64
	width float64 // average encoded bytes per row
	cost  float64 // accumulated modeled cost, seconds
	prop  string  // partitioning property ("" = none/unknown)
	order string  // textual join order for Info
}

type search struct {
	b    *binding
	env  Environment
	memo map[uint32]map[string]*candidate
}

func cheapest(alts map[string]*candidate) *candidate {
	var best *candidate
	for _, c := range alts {
		if best == nil || c.cost < best.cost {
			best = c
		}
	}
	return best
}

// optimize returns the non-dominated alternatives (best per partitioning
// property) for the table subset.
func (s *search) optimize(set uint32) map[string]*candidate {
	if alts, ok := s.memo[set]; ok {
		return alts
	}
	alts := make(map[string]*candidate)
	consider := func(c *candidate) {
		if c == nil {
			return
		}
		// Branch-and-bound at the group level: a candidate is kept only if
		// it is the cheapest seen for its partitioning property.
		if cur, ok := alts[c.prop]; ok && cur.cost <= c.cost {
			return
		}
		alts[c.prop] = c
	}

	if popcount(set) == 1 {
		ti := trailingZeros(set)
		consider(s.scanCandidate(ti))
		s.memo[set] = alts
		return alts
	}

	// Enumerate splits (bushy: all subset pairs). Prefer connected splits;
	// fall back to cross joins only when no split is connected.
	type split struct{ l, r uint32 }
	var connected, cross []split
	for l := (set - 1) & set; l > 0; l = (l - 1) & set {
		r := set &^ l
		if l > r {
			continue // each unordered pair once; commutativity handled below
		}
		if len(s.edgesBetween(l, r)) > 0 {
			connected = append(connected, split{l, r})
		} else {
			cross = append(cross, split{l, r})
		}
	}
	splits := connected
	if len(splits) == 0 {
		splits = cross
	}
	for _, sp := range splits {
		lAlts := s.optimize(sp.l)
		rAlts := s.optimize(sp.r)
		edges := s.edgesBetween(sp.l, sp.r)
		for _, lc := range lAlts {
			for _, rc := range rAlts {
				// Join commutativity: both orientations.
				consider(s.joinCandidate(lc, rc, sp.l, edges))
				consider(s.joinCandidate(rc, lc, sp.r, flipEdges(edges)))
			}
		}
	}
	s.memo[set] = alts
	return alts
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// edgesBetween returns the equi-join edges connecting two disjoint subsets,
// oriented left-to-right and ordered canonically by equivalence class.
func (s *search) edgesBetween(l, r uint32) []joinEdge {
	var out []joinEdge
	for _, e := range s.b.joins {
		lBit, rBit := uint32(1)<<e.l.table, uint32(1)<<e.r.table
		switch {
		case l&lBit != 0 && r&rBit != 0:
			out = append(out, e)
		case l&rBit != 0 && r&lBit != 0:
			out = append(out, joinEdge{l: e.r, r: e.l})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return s.b.classOf[out[i].l] < s.b.classOf[out[j].l]
	})
	// Drop duplicate classes (transitively implied equalities) so the hash
	// key is minimal and matches across plans.
	dedup := out[:0]
	seen := map[int]bool{}
	for _, e := range out {
		c := s.b.classOf[e.l]
		if !seen[c] {
			seen[c] = true
			dedup = append(dedup, e)
		}
	}
	return dedup
}

func flipEdges(edges []joinEdge) []joinEdge {
	out := make([]joinEdge, len(edges))
	for i, e := range edges {
		out[i] = joinEdge{l: e.r, r: e.l}
	}
	return out
}

// --- leaf (scan) candidates ---

func (s *search) scanCandidate(ti int) *candidate {
	t := s.b.tables[ti]
	scan := &engine.ScanNode{Relation: t.ref.Table, Pred: s.sargable(ti)}
	rows := float64(t.stats.Rows)
	var cols []colID
	width := 0.0
	var cost float64
	if s.b.keyOnly(ti) {
		// Covering index scan (Table I): only key attributes are needed, so
		// tuple IDs are decoded at the index nodes and the data storage
		// pass is skipped entirely. The output layout is the key columns in
		// key order.
		scan.Covering = true
		for _, k := range t.schema.Key {
			cols = append(cols, colID{table: ti, col: k})
			width += columnWidth(t.schema.Columns[k].Type)
		}
		cost = rows / float64(s.env.Nodes) * s.env.TupleCPU
	} else {
		cols = make([]colID, t.schema.Arity())
		for ci := range cols {
			cols[ci] = colID{table: ti, col: ci}
			width += columnWidth(t.schema.Columns[ci].Type)
		}
		cost = rows / float64(s.env.Nodes) * (s.env.TupleDisk + s.env.TupleCPU)
	}

	var node engine.Node = scan
	if len(s.b.filters[ti]) > 0 {
		pred, err := s.tableFilterExpr(ti, cols)
		if err == nil {
			node = &engine.SelectNode{Pred: pred, Child: node}
			rows *= s.filterSelectivity(ti)
			cost += rows / float64(s.env.Nodes) * s.env.TupleCPU
		}
	}
	keyCols := make([]colID, len(t.schema.Key))
	for i, k := range t.schema.Key {
		keyCols[i] = colID{table: ti, col: k}
	}
	return &candidate{
		node:  node,
		cols:  cols,
		rows:  math.Max(rows, 1),
		width: width,
		cost:  cost,
		prop:  s.b.propOf(keyCols),
		order: t.ref.Name(),
	}
}

// tableFilterExpr conjoins a table's filters over its scan layout.
func (s *search) tableFilterExpr(ti int, cols []colID) (engine.Expr, error) {
	resolve := func(cr sql.ColRef) (int, error) {
		id, err := s.b.lookupColumn(cr)
		if err != nil {
			return 0, err
		}
		for pos, c := range cols {
			if c == id {
				return pos, nil
			}
		}
		return 0, fmt.Errorf("optimizer: column %s not in layout", cr)
	}
	var pred engine.Expr
	for _, f := range s.b.filters[ti] {
		e, err := convertScalar(f, resolve)
		if err != nil {
			return nil, err
		}
		if pred == nil {
			pred = e
		} else {
			pred = engine.B(engine.OpAnd, pred, e)
		}
	}
	return pred, nil
}

// sargable derives index-level key bounds from the table's filters on the
// leading key column. The full predicate is always retained as a residual
// select, so the bounds only need to be a superset of the matching keys;
// with the order-preserving key encoding (type tags 0x01-0x03 < 0xFE) the
// bounds below are in fact exact on the leading column.
func (s *search) sargable(ti int) cluster.KeyPred {
	t := s.b.tables[ti]
	if len(t.schema.Key) == 0 {
		return cluster.AllPred()
	}
	leadName := t.schema.Columns[t.schema.Key[0]].Name
	var pred cluster.KeyPred
	tightenLo := func(b []byte) {
		if pred.Lo == nil || string(b) > string(pred.Lo) {
			pred.Lo = b
		}
	}
	tightenHi := func(b []byte) {
		if pred.Hi == nil || string(b) < string(pred.Hi) {
			pred.Hi = b
		}
	}
	enc := func(e sql.Expr) ([]byte, bool) {
		v, ok := literalValue(e)
		if !ok {
			return nil, false
		}
		return tuple.AppendKeyValue(nil, v), true
	}
	for _, f := range s.b.filters[ti] {
		switch e := f.(type) {
		case sql.BinExpr:
			cr, ok := e.L.(sql.ColRef)
			if !ok || cr.Column != leadName {
				continue
			}
			b, ok := enc(e.R)
			if !ok {
				continue
			}
			switch e.Op {
			case sql.OpEq:
				tightenLo(b)
				tightenHi(append(append([]byte(nil), b...), 0xFE))
			case sql.OpGe:
				tightenLo(b)
			case sql.OpGt:
				tightenLo(append(append([]byte(nil), b...), 0xFE))
			case sql.OpLt:
				tightenHi(b)
			case sql.OpLe:
				tightenHi(append(append([]byte(nil), b...), 0xFE))
			}
		case sql.BetweenExpr:
			cr, ok := e.E.(sql.ColRef)
			if !ok || cr.Column != leadName {
				continue
			}
			if b, ok := enc(e.Lo); ok {
				tightenLo(b)
			}
			if b, ok := enc(e.Hi); ok {
				tightenHi(append(append([]byte(nil), b...), 0xFE))
			}
		}
	}
	return pred
}

func literalValue(e sql.Expr) (tuple.Value, bool) {
	switch t := e.(type) {
	case sql.IntLit:
		return tuple.I(t.V), true
	case sql.FloatLit:
		return tuple.F(t.V), true
	case sql.StringLit:
		return tuple.S(t.V), true
	}
	return tuple.Value{}, false
}

// filterSelectivity estimates the combined selectivity of a table's
// filters with standard heuristics.
func (s *search) filterSelectivity(ti int) float64 {
	sel := 1.0
	for _, f := range s.b.filters[ti] {
		sel *= conjunctSelectivity(f, s, ti)
	}
	return sel
}

func conjunctSelectivity(e sql.Expr, s *search, ti int) float64 {
	switch t := e.(type) {
	case sql.BinExpr:
		switch t.Op {
		case sql.OpEq:
			if cr, ok := t.L.(sql.ColRef); ok {
				return 1 / math.Max(1, float64(s.distinctOf(ti, cr.Column)))
			}
			return 0.1
		case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return 1.0 / 3
		case sql.OpNe:
			return 0.9
		case sql.OpOr:
			a := conjunctSelectivity(t.L, s, ti)
			b := conjunctSelectivity(t.R, s, ti)
			return math.Min(1, a+b)
		case sql.OpAnd:
			return conjunctSelectivity(t.L, s, ti) * conjunctSelectivity(t.R, s, ti)
		}
		return 0.5
	case sql.BetweenExpr:
		return 1.0 / 4
	case sql.NotExpr:
		return 1 - conjunctSelectivity(t.E, s, ti)
	default:
		return 0.5
	}
}

// distinctOf estimates a column's distinct count.
func (s *search) distinctOf(ti int, column string) int64 {
	t := s.b.tables[ti]
	if d, ok := t.stats.Distinct[column]; ok && d > 0 {
		return d
	}
	for i, k := range t.schema.Key {
		if i == 0 && t.schema.Columns[k].Name == column && len(t.schema.Key) == 1 {
			return t.stats.Rows // single-column key is unique
		}
	}
	d := t.stats.Rows / 10
	if d < 1 {
		d = 1
	}
	return d
}

// --- join candidates ---

// joinCandidate builds left ⋈ right with rehash enforcers as needed.
func (s *search) joinCandidate(lc, rc *candidate, _ uint32, edges []joinEdge) *candidate {
	if len(edges) == 0 {
		// Cross join: rehash right to a single synthetic key is not
		// supported; broadcast semantics are out of scope, so evaluate as
		// a join on a constant key by rehashing both sides on no columns.
		return nil
	}
	leftIDs := make([]colID, len(edges))
	rightIDs := make([]colID, len(edges))
	for i, e := range edges {
		leftIDs[i], rightIDs[i] = e.l, e.r
	}
	targetProp := s.b.propOf(leftIDs)

	leftKeys, err := positionsOf(lc.cols, leftIDs)
	if err != nil {
		return nil
	}
	rightKeys, err := positionsOf(rc.cols, rightIDs)
	if err != nil {
		return nil
	}

	cost := lc.cost + rc.cost
	lNode, lCost := s.enforce(lc, leftKeys, targetProp)
	rNode, rCost := s.enforce(rc, rightKeys, targetProp)
	cost += lCost + rCost

	outRows := s.joinCardinality(lc, rc, edges)
	n := float64(s.env.Nodes)
	cost += (lc.rows+rc.rows)/n*s.env.TupleCPU + outRows/n*s.env.TupleCPU

	return &candidate{
		node: &engine.JoinNode{
			LeftKeys:  leftKeys,
			RightKeys: rightKeys,
			Left:      lNode,
			Right:     rNode,
		},
		cols:  append(append([]colID(nil), lc.cols...), rc.cols...),
		rows:  math.Max(outRows, 1),
		width: lc.width + rc.width,
		cost:  cost,
		prop:  targetProp,
		order: "(" + lc.order + " ⋈ " + rc.order + ")",
	}
}

// enforce inserts a rehash when the candidate is not already partitioned
// compatibly (the enforcer of the Volcano framework).
func (s *search) enforce(c *candidate, keys []int, targetProp string) (engine.Node, float64) {
	if c.prop == targetProp {
		return c.node, 0 // colocated: no data movement
	}
	n := float64(s.env.Nodes)
	cost := c.rows/n*s.env.TupleCPU*2 + (c.rows/n)*c.width/s.env.LinkBytesPerSec
	return &engine.RehashNode{Keys: keys, Child: c.node}, cost
}

func positionsOf(layout []colID, ids []colID) ([]int, error) {
	out := make([]int, len(ids))
	for i, id := range ids {
		found := -1
		for pos, c := range layout {
			if c == id {
				found = pos
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("optimizer: column not in layout")
		}
		out[i] = found
	}
	return out, nil
}

// joinCardinality estimates |L ⋈ R| with the standard distinct-value model.
func (s *search) joinCardinality(lc, rc *candidate, edges []joinEdge) float64 {
	out := lc.rows * rc.rows
	for _, e := range edges {
		dl := float64(s.distinctOf(e.l.table, s.colName(e.l)))
		dr := float64(s.distinctOf(e.r.table, s.colName(e.r)))
		out /= math.Max(1, math.Max(dl, dr))
	}
	return math.Max(out, 1)
}

func (s *search) colName(c colID) string {
	return s.b.tables[c.table].schema.Columns[c.col].Name
}

// --- lowering of the post-join pipeline ---

// lower attaches cross-table residual filters, projections or aggregation,
// and the initiator-side final operators to the chosen join tree.
func (s *search) lower(q *sql.Query, best *candidate, info *Info) (*engine.Plan, error) {
	node := best.node
	cols := best.cols
	resolve := func(cr sql.ColRef) (int, error) {
		id, err := s.b.lookupColumn(cr)
		if err != nil {
			return 0, err
		}
		for pos, c := range cols {
			if c == id {
				return pos, nil
			}
		}
		return 0, fmt.Errorf("optimizer: column %s not available", cr)
	}

	// Residual cross-table predicates.
	for _, e := range s.b.cross {
		pred, err := convertScalar(e, resolve)
		if err != nil {
			return nil, err
		}
		node = &engine.SelectNode{Pred: pred, Child: node}
	}

	hasAgg := len(q.GroupBy) > 0
	for _, item := range q.Select {
		if !item.Star && sql.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}

	var plan *engine.Plan
	var err error
	if hasAgg {
		plan, err = s.lowerAggregate(q, node, cols, best, resolve, info)
	} else {
		plan, err = s.lowerProjection(q, node, cols, resolve)
	}
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// outputName returns the visible name of a select item for ORDER BY
// resolution.
func outputName(item sql.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(sql.ColRef); ok {
		return cr.Column
	}
	return ""
}

// resolveOrderBy maps ORDER BY expressions onto output column positions.
func resolveOrderBy(q *sql.Query, outNames []string, outExprs []string) ([]engine.SortKey, error) {
	var keys []engine.SortKey
	for _, o := range q.OrderBy {
		pos := -1
		if cr, ok := o.Expr.(sql.ColRef); ok && cr.Table == "" {
			for i, n := range outNames {
				if n == cr.Column {
					pos = i
					break
				}
			}
		}
		if pos < 0 {
			want := o.Expr.String()
			for i, e := range outExprs {
				if e == want {
					pos = i
					break
				}
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("optimizer: ORDER BY %s does not name an output column", o.Expr)
		}
		keys = append(keys, engine.SortKey{Col: pos, Desc: o.Desc})
	}
	return keys, nil
}

// lowerProjection handles aggregate-free queries: compute or project the
// select list at the nodes, then final sort/limit at the initiator.
func (s *search) lowerProjection(q *sql.Query, node engine.Node, cols []colID, resolve func(sql.ColRef) (int, error)) (*engine.Plan, error) {
	var outNames, outExprs []string
	var exprs []engine.Expr
	allPlain := true
	var plainCols []int
	for _, item := range q.Select {
		if item.Star {
			for pos, c := range cols {
				exprs = append(exprs, engine.C(pos))
				plainCols = append(plainCols, pos)
				outNames = append(outNames, s.colName(c))
				outExprs = append(outExprs, s.colName(c))
			}
			continue
		}
		e, err := convertScalar(item.Expr, resolve)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if c, ok := e.(engine.Col); ok {
			plainCols = append(plainCols, c.Idx)
		} else {
			allPlain = false
		}
		outNames = append(outNames, outputName(item))
		outExprs = append(outExprs, item.Expr.String())
	}

	identity := allPlain && len(plainCols) == len(cols)
	if identity {
		for i, p := range plainCols {
			if p != i {
				identity = false
				break
			}
		}
	}
	switch {
	case identity:
		// SELECT * (or the full layout in order): no operator needed.
	case allPlain:
		node = &engine.ProjectNode{Cols: plainCols, Child: node}
	default:
		node = &engine.ComputeNode{Exprs: exprs, Child: node}
	}

	plan := &engine.Plan{Root: node}
	sortKeys, err := resolveOrderBy(q, outNames, outExprs)
	if err != nil {
		return nil, err
	}
	if len(sortKeys) > 0 {
		plan.Final = append(plan.Final, &engine.FinalSort{Keys: sortKeys})
	}
	if q.Limit >= 0 {
		plan.Final = append(plan.Final, &engine.FinalLimit{N: q.Limit})
	}
	return plan, nil
}

// aggRef is one distinct aggregate application found in the select list.
type aggRef struct {
	fn  string
	arg sql.Expr // nil for COUNT(*)
	key string   // canonical text for dedup
}

// lowerAggregate handles grouping queries. The input is first narrowed by
// a compute to exactly [group columns..., aggregate arguments...]; then
// either per-node partial aggregation with a final merge at the initiator,
// or a rehash on the grouping key followed by complete aggregation —
// whichever the cost model prefers (the rehash is skipped when the input
// is already partitioned on the grouping key).
func (s *search) lowerAggregate(q *sql.Query, node engine.Node, cols []colID, best *candidate, resolve func(sql.ColRef) (int, error), info *Info) (*engine.Plan, error) {
	// Group-by expressions must be plain columns (engine restriction).
	groupIDs := make([]colID, len(q.GroupBy))
	groupExprs := make([]engine.Expr, len(q.GroupBy))
	for i, g := range q.GroupBy {
		cr, ok := g.(sql.ColRef)
		if !ok {
			return nil, fmt.Errorf("optimizer: GROUP BY must reference columns, got %s", g)
		}
		id, err := s.b.lookupColumn(cr)
		if err != nil {
			return nil, err
		}
		groupIDs[i] = id
		pos, err := resolve(cr)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = engine.C(pos)
	}

	// Collect distinct aggregates from the select list.
	var aggs []aggRef
	aggPos := map[string]int{}
	collect := func(e sql.Expr) error {
		var walk func(sql.Expr) error
		walk = func(e sql.Expr) error {
			switch t := e.(type) {
			case sql.AggExpr:
				key := t.String()
				if _, ok := aggPos[key]; !ok {
					aggPos[key] = len(aggs)
					aggs = append(aggs, aggRef{fn: t.Func, arg: t.Arg, key: key})
				}
			case sql.BinExpr:
				if err := walk(t.L); err != nil {
					return err
				}
				return walk(t.R)
			case sql.NotExpr:
				return walk(t.E)
			case sql.BetweenExpr:
				if err := walk(t.E); err != nil {
					return err
				}
				if err := walk(t.Lo); err != nil {
					return err
				}
				return walk(t.Hi)
			}
			return nil
		}
		return walk(e)
	}
	for _, item := range q.Select {
		if item.Star {
			return nil, fmt.Errorf("optimizer: SELECT * cannot be combined with aggregation")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}

	// Pre-aggregation compute: [groups..., agg args...]. COUNT(*) needs no
	// input column; a constant placeholder keeps positions aligned.
	pre := append([]engine.Expr(nil), groupExprs...)
	specs := make([]engine.AggSpec, len(aggs))
	for i, a := range aggs {
		col := len(pre)
		if a.arg == nil {
			specs[i] = engine.AggSpec{Func: engine.AggCount, Col: -1}
			pre = append(pre, engine.CI(1))
			continue
		}
		e, err := convertScalar(a.arg, resolve)
		if err != nil {
			return nil, err
		}
		pre = append(pre, e)
		fn, ok := map[string]engine.AggFunc{
			"COUNT": engine.AggCount, "SUM": engine.AggSum,
			"MIN": engine.AggMin, "MAX": engine.AggMax, "AVG": engine.AggAvg,
		}[a.fn]
		if !ok {
			return nil, fmt.Errorf("optimizer: unknown aggregate %s", a.fn)
		}
		specs[i] = engine.AggSpec{Func: fn, Col: col}
	}
	node = &engine.ComputeNode{Exprs: pre, Child: node}
	groupPos := make([]int, len(groupExprs))
	for i := range groupPos {
		groupPos[i] = i
	}

	// Cost the two strategies.
	n := float64(s.env.Nodes)
	groups := 1.0
	for _, id := range groupIDs {
		groups *= float64(s.distinctOf(id.table, s.colName(id)))
	}
	groups = math.Min(math.Max(groups, 1), best.rows)
	outWidth := float64(len(pre)) * 10
	partialRows := math.Min(groups*n, best.rows)
	partialCost := best.rows/n*s.env.TupleCPU +
		partialRows*outWidth/s.env.InitiatorBytesPerSec +
		partialRows*s.env.TupleCPU
	completeCost := best.rows/n*s.env.TupleCPU +
		groups*outWidth/s.env.InitiatorBytesPerSec
	alreadyPartitioned := len(groupIDs) > 0 && best.prop == s.b.propOf(groupIDs)
	if !alreadyPartitioned {
		completeCost += best.rows/n*s.env.TupleCPU*2 + (best.rows/n)*best.width/s.env.LinkBytesPerSec
	}

	plan := &engine.Plan{}
	if len(groupExprs) > 0 && completeCost < partialCost {
		info.AggMode = "complete"
		info.Cost += completeCost
		if !alreadyPartitioned {
			node = &engine.RehashNode{Keys: groupPos, Child: node}
		}
		plan.Root = &engine.AggNode{
			GroupCols: groupPos,
			Aggs:      specs,
			Mode:      engine.AggComplete,
			Child:     node,
		}
	} else {
		info.AggMode = "partial"
		info.Cost += partialCost
		plan.Root = &engine.AggNode{
			GroupCols: groupPos,
			Aggs:      specs,
			Mode:      engine.AggPartial,
			Child:     node,
		}
		plan.Final = append(plan.Final, &engine.FinalAgg{GroupCols: groupPos, Aggs: specs})
	}

	// Post-aggregation output: rows are [groups..., agg results...]. Remap
	// the select list over that layout; skip the compute when the select
	// list is exactly the layout.
	aggResolve := func(cr sql.ColRef) (int, error) {
		id, err := s.b.lookupColumn(cr)
		if err != nil {
			return 0, err
		}
		for i, g := range groupIDs {
			if g == id {
				return i, nil
			}
		}
		return 0, fmt.Errorf("optimizer: %s is neither grouped nor aggregated", cr)
	}
	var finalExprs []engine.Expr
	var outNames, outExprs []string
	identity := len(q.Select) == len(groupExprs)+len(specs)
	for i, item := range q.Select {
		e, err := convertAggExpr(item.Expr, aggResolve, aggPos, len(groupExprs))
		if err != nil {
			return nil, err
		}
		finalExprs = append(finalExprs, e)
		if c, ok := e.(engine.Col); !ok || c.Idx != i {
			identity = false
		}
		outNames = append(outNames, outputName(item))
		outExprs = append(outExprs, item.Expr.String())
	}
	if !identity {
		plan.Final = append(plan.Final, &engine.FinalCompute{Exprs: finalExprs})
	}

	sortKeys, err := resolveOrderBy(q, outNames, outExprs)
	if err != nil {
		return nil, err
	}
	if len(sortKeys) > 0 {
		plan.Final = append(plan.Final, &engine.FinalSort{Keys: sortKeys})
	}
	if q.Limit >= 0 {
		plan.Final = append(plan.Final, &engine.FinalLimit{N: q.Limit})
	}
	return plan, nil
}

// convertAggExpr lowers a select expression over the aggregate output
// layout: group columns resolve through aggResolve, aggregate applications
// resolve to their result positions.
func convertAggExpr(e sql.Expr, aggResolve func(sql.ColRef) (int, error), aggPos map[string]int, nGroups int) (engine.Expr, error) {
	switch t := e.(type) {
	case sql.AggExpr:
		pos, ok := aggPos[t.String()]
		if !ok {
			return nil, fmt.Errorf("optimizer: aggregate %s not collected", t)
		}
		return engine.C(nGroups + pos), nil
	case sql.ColRef:
		pos, err := aggResolve(t)
		if err != nil {
			return nil, err
		}
		return engine.C(pos), nil
	case sql.IntLit:
		return engine.CI(t.V), nil
	case sql.FloatLit:
		return engine.CF(t.V), nil
	case sql.StringLit:
		return engine.CS(t.V), nil
	case sql.NotExpr:
		inner, err := convertAggExpr(t.E, aggResolve, aggPos, nGroups)
		if err != nil {
			return nil, err
		}
		return engine.Not{E: inner}, nil
	case sql.BinExpr:
		l, err := convertAggExpr(t.L, aggResolve, aggPos, nGroups)
		if err != nil {
			return nil, err
		}
		r, err := convertAggExpr(t.R, aggResolve, aggPos, nGroups)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[t.Op]
		if !ok {
			return nil, fmt.Errorf("optimizer: unsupported operator %q", t.Op)
		}
		return engine.B(op, l, r), nil
	default:
		return nil, fmt.Errorf("optimizer: unsupported expression %T after aggregation", e)
	}
}

// Explain renders the chosen plan and estimates for humans. ship names
// the engine's final-pipeline pushdown class for the plan ("stream",
// "top-k", "partial-agg", or "collect") — how the answer will reach the
// initiator when the query runs without provenance.
func Explain(p *engine.Plan, info *Info) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost=%.6fs rows=%.0f order=%s", info.Cost, info.Rows, info.JoinOrder)
	if info.AggMode != "" {
		fmt.Fprintf(&b, " agg=%s", info.AggMode)
	}
	fmt.Fprintf(&b, " ship=%s", engine.PushdownClass(p))
	b.WriteString("\n")
	b.WriteString(p.String())
	return b.String()
}
