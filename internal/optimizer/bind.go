package optimizer

import (
	"fmt"
	"strings"

	"orchestra/internal/engine"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
)

// colID identifies a base column as (FROM-position, column index).
type colID struct {
	table int
	col   int
}

// binding is the name-resolved form of a query: tables with schemas and
// stats, per-table filters, equi-join edges, residual cross-table
// predicates, and the resolved output expressions.
type binding struct {
	q       *sql.Query
	tables  []boundTable
	byName  map[string]int // alias/name → table index
	filters [][]sql.Expr   // per-table conjuncts (single-table references)
	joins   []joinEdge     // equi-join conjuncts
	cross   []sql.Expr     // other multi-table conjuncts (post-join filter)

	// Column equivalence classes induced by the equi-join predicates; used
	// to recognize co-partitioned inputs (colocated joins need no rehash).
	classOf map[colID]int

	// referenced records every base column the query touches, per table —
	// used to choose covering index scans (Table I) when a table's key
	// columns suffice.
	referenced map[colID]bool
}

type boundTable struct {
	ref    sql.TableRef
	schema *tuple.Schema
	stats  TableStats
}

// joinEdge is one equi-join conjunct l = r with l, r on different tables.
type joinEdge struct {
	l, r colID
}

// bind resolves the query against the catalog.
func bind(q *sql.Query, cat Catalog) (*binding, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("optimizer: query has no FROM tables")
	}
	if len(q.From) > 31 {
		return nil, fmt.Errorf("optimizer: too many tables (%d)", len(q.From))
	}
	b := &binding{
		q:          q,
		byName:     make(map[string]int),
		classOf:    make(map[colID]int),
		referenced: make(map[colID]bool),
	}
	for i, ref := range q.From {
		schema, err := cat.Schema(ref.Table)
		if err != nil {
			return nil, err
		}
		stats := cat.Stats(ref.Table)
		if stats.Rows <= 0 {
			stats.Rows = 1000
		}
		name := ref.Name()
		if _, dup := b.byName[name]; dup {
			return nil, fmt.Errorf("optimizer: duplicate table name %q (alias needed)", name)
		}
		b.byName[name] = i
		b.tables = append(b.tables, boundTable{ref: ref, schema: schema, stats: stats})
	}
	b.filters = make([][]sql.Expr, len(b.tables))

	if q.Where != nil {
		for _, conj := range splitConjuncts(q.Where) {
			if err := b.placeConjunct(conj); err != nil {
				return nil, err
			}
		}
	}
	b.buildClasses()
	b.collectReferenced()
	return b, nil
}

// collectReferenced walks every expression in the query and records the
// base columns it touches. A star reference touches every column.
func (b *binding) collectReferenced() {
	mark := func(e sql.Expr) {
		var walk func(sql.Expr)
		walk = func(e sql.Expr) {
			switch t := e.(type) {
			case sql.ColRef:
				if id, err := b.lookupColumn(t); err == nil {
					b.referenced[id] = true
				}
			case sql.BinExpr:
				walk(t.L)
				walk(t.R)
			case sql.NotExpr:
				walk(t.E)
			case sql.BetweenExpr:
				walk(t.E)
				walk(t.Lo)
				walk(t.Hi)
			case sql.AggExpr:
				if t.Arg != nil {
					walk(t.Arg)
				}
			}
		}
		walk(e)
	}
	for _, item := range b.q.Select {
		if item.Star {
			for ti, t := range b.tables {
				for ci := range t.schema.Columns {
					b.referenced[colID{table: ti, col: ci}] = true
				}
			}
			continue
		}
		mark(item.Expr)
	}
	if b.q.Where != nil {
		mark(b.q.Where)
	}
	for _, g := range b.q.GroupBy {
		mark(g)
	}
	for _, o := range b.q.OrderBy {
		mark(o.Expr)
	}
	for _, j := range b.joins {
		b.referenced[j.l] = true
		b.referenced[j.r] = true
	}
}

// keyOnly reports whether the query touches only key columns of table ti.
func (b *binding) keyOnly(ti int) bool {
	t := b.tables[ti]
	isKey := make(map[int]bool, len(t.schema.Key))
	for _, k := range t.schema.Key {
		isKey[k] = true
	}
	for id := range b.referenced {
		if id.table == ti && !isKey[id.col] {
			return false
		}
	}
	return true
}

// splitConjuncts flattens a predicate into AND-connected conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if be, ok := e.(sql.BinExpr); ok && be.Op == sql.OpAnd {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []sql.Expr{e}
}

// placeConjunct classifies one conjunct as a single-table filter, an
// equi-join edge, or a residual cross-table predicate.
func (b *binding) placeConjunct(e sql.Expr) error {
	tables, err := b.referencedTables(e)
	if err != nil {
		return err
	}
	switch len(tables) {
	case 0:
		// Constant predicate: attach to the first table (evaluated there).
		b.filters[0] = append(b.filters[0], e)
		return nil
	case 1:
		for t := range tables {
			b.filters[t] = append(b.filters[t], e)
		}
		return nil
	}
	// Equi-join pattern: col = col across two tables.
	if be, ok := e.(sql.BinExpr); ok && be.Op == sql.OpEq {
		lc, lok := b.resolveColRef(be.L)
		rc, rok := b.resolveColRef(be.R)
		if lok && rok && lc.table != rc.table {
			b.joins = append(b.joins, joinEdge{l: lc, r: rc})
			return nil
		}
	}
	b.cross = append(b.cross, e)
	return nil
}

// resolveColRef resolves an expression that is exactly a column reference.
func (b *binding) resolveColRef(e sql.Expr) (colID, bool) {
	cr, ok := e.(sql.ColRef)
	if !ok {
		return colID{}, false
	}
	id, err := b.lookupColumn(cr)
	if err != nil {
		return colID{}, false
	}
	return id, true
}

// lookupColumn resolves a (possibly unqualified) column reference.
func (b *binding) lookupColumn(cr sql.ColRef) (colID, error) {
	if cr.Table != "" {
		ti, ok := b.byName[cr.Table]
		if !ok {
			return colID{}, fmt.Errorf("optimizer: unknown table %q in %s", cr.Table, cr)
		}
		ci := b.tables[ti].schema.ColumnIndex(cr.Column)
		if ci < 0 {
			return colID{}, fmt.Errorf("optimizer: unknown column %s", cr)
		}
		return colID{table: ti, col: ci}, nil
	}
	found := colID{table: -1}
	for ti, t := range b.tables {
		if ci := t.schema.ColumnIndex(cr.Column); ci >= 0 {
			if found.table >= 0 {
				return colID{}, fmt.Errorf("optimizer: ambiguous column %q", cr.Column)
			}
			found = colID{table: ti, col: ci}
		}
	}
	if found.table < 0 {
		return colID{}, fmt.Errorf("optimizer: unknown column %q", cr.Column)
	}
	return found, nil
}

// referencedTables collects the FROM positions referenced by e.
func (b *binding) referencedTables(e sql.Expr) (map[int]bool, error) {
	out := make(map[int]bool)
	var walk func(sql.Expr) error
	walk = func(e sql.Expr) error {
		switch t := e.(type) {
		case sql.ColRef:
			id, err := b.lookupColumn(t)
			if err != nil {
				return err
			}
			out[id.table] = true
		case sql.BinExpr:
			if err := walk(t.L); err != nil {
				return err
			}
			return walk(t.R)
		case sql.NotExpr:
			return walk(t.E)
		case sql.BetweenExpr:
			if err := walk(t.E); err != nil {
				return err
			}
			if err := walk(t.Lo); err != nil {
				return err
			}
			return walk(t.Hi)
		case sql.AggExpr:
			if t.Arg != nil {
				return walk(t.Arg)
			}
		}
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return out, nil
}

// buildClasses computes column equivalence classes (union-find over the
// equi-join edges); columns in the same class carry equal values in join
// results, so partitioning on one is partitioning on the other.
func (b *binding) buildClasses() {
	parent := make(map[colID]colID)
	var find func(c colID) colID
	find = func(c colID) colID {
		p, ok := parent[c]
		if !ok || p == c {
			return c
		}
		root := find(p)
		parent[c] = root
		return root
	}
	union := func(a, c colID) {
		ra, rc := find(a), find(c)
		if ra != rc {
			parent[ra] = rc
		}
	}
	for _, j := range b.joins {
		union(j.l, j.r)
	}
	// Number the classes densely for canonical property strings.
	ids := make(map[colID]int)
	classID := func(c colID) int {
		root := find(c)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		return id
	}
	for ti, t := range b.tables {
		for ci := range t.schema.Columns {
			c := colID{table: ti, col: ci}
			b.classOf[c] = classID(c)
		}
	}
}

// propOf canonicalizes a partitioning property: the class ids of the hash
// columns, in hash order. Matching properties mean matching tuples land on
// the same node without a rehash.
func (b *binding) propOf(cols []colID) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", b.classOf[c])
	}
	return strings.Join(parts, ",")
}

// convertScalar lowers a scalar sql.Expr to an engine.Expr over a given
// column layout (base-column positions). Aggregates are rejected here; the
// aggregate path extracts them first.
func convertScalar(e sql.Expr, resolve func(sql.ColRef) (int, error)) (engine.Expr, error) {
	switch t := e.(type) {
	case sql.ColRef:
		pos, err := resolve(t)
		if err != nil {
			return nil, err
		}
		return engine.C(pos), nil
	case sql.IntLit:
		return engine.CI(t.V), nil
	case sql.FloatLit:
		return engine.CF(t.V), nil
	case sql.StringLit:
		return engine.CS(t.V), nil
	case sql.NotExpr:
		inner, err := convertScalar(t.E, resolve)
		if err != nil {
			return nil, err
		}
		return engine.Not{E: inner}, nil
	case sql.BetweenExpr:
		v, err := convertScalar(t.E, resolve)
		if err != nil {
			return nil, err
		}
		lo, err := convertScalar(t.Lo, resolve)
		if err != nil {
			return nil, err
		}
		hi, err := convertScalar(t.Hi, resolve)
		if err != nil {
			return nil, err
		}
		return engine.B(engine.OpAnd,
			engine.B(engine.OpGe, v, lo),
			engine.B(engine.OpLe, v, hi)), nil
	case sql.BinExpr:
		l, err := convertScalar(t.L, resolve)
		if err != nil {
			return nil, err
		}
		r, err := convertScalar(t.R, resolve)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[t.Op]
		if !ok {
			return nil, fmt.Errorf("optimizer: unsupported operator %q", t.Op)
		}
		return engine.B(op, l, r), nil
	case sql.AggExpr:
		return nil, fmt.Errorf("optimizer: aggregate %s in scalar context", t)
	default:
		return nil, fmt.Errorf("optimizer: unsupported expression %T", e)
	}
}

var binOps = map[string]engine.OpCode{
	sql.OpOr:     engine.OpOr,
	sql.OpAnd:    engine.OpAnd,
	sql.OpEq:     engine.OpEq,
	sql.OpNe:     engine.OpNe,
	sql.OpLt:     engine.OpLt,
	sql.OpLe:     engine.OpLe,
	sql.OpGt:     engine.OpGt,
	sql.OpGe:     engine.OpGe,
	sql.OpAdd:    engine.OpAdd,
	sql.OpSub:    engine.OpSub,
	sql.OpMul:    engine.OpMul,
	sql.OpDiv:    engine.OpDiv,
	sql.OpConcat: engine.OpConcat,
}
