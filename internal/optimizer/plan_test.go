package optimizer

import (
	"strings"
	"testing"

	"orchestra/internal/engine"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
)

func testCatalog() *MapCatalog {
	return &MapCatalog{
		Schemas: map[string]*tuple.Schema{
			"R": tuple.MustSchema("R", []tuple.Column{
				{Name: "x", Type: tuple.Int64},
				{Name: "y", Type: tuple.Int64},
			}, "x"),
			"S": tuple.MustSchema("S", []tuple.Column{
				{Name: "y", Type: tuple.Int64},
				{Name: "z", Type: tuple.Int64},
			}, "y"),
			"T": tuple.MustSchema("T", []tuple.Column{
				{Name: "z", Type: tuple.Int64},
				{Name: "w", Type: tuple.String},
			}, "z"),
		},
		Tables: map[string]TableStats{
			"R": {Rows: 100000, Distinct: map[string]int64{"y": 500}},
			"S": {Rows: 2000},
			"T": {Rows: 50000},
		},
	}
}

func build(t *testing.T, src string) (*engine.Plan, *Info) {
	t.Helper()
	q, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, info, err := Build(q, testCatalog(), Environment{Nodes: 8})
	if err != nil {
		t.Fatalf("Build(%q): %v", src, err)
	}
	return p, info
}

func planString(p *engine.Plan) string { return p.String() }

func TestPlanSimpleScan(t *testing.T) {
	p, info := build(t, "SELECT x, y FROM R")
	str := planString(p)
	if !strings.Contains(str, "DistributedScan(R)") {
		t.Fatalf("no scan:\n%s", str)
	}
	if strings.Contains(str, "Rehash") {
		t.Fatalf("unneeded rehash:\n%s", str)
	}
	if info.Rows < 90000 {
		t.Fatalf("cardinality estimate off: %f", info.Rows)
	}
}

func TestPlanProjectionPushed(t *testing.T) {
	p, _ := build(t, "SELECT y FROM R")
	if !strings.Contains(planString(p), "Project") {
		t.Fatalf("expected node-side projection:\n%s", planString(p))
	}
}

func TestPlanComputePushed(t *testing.T) {
	p, _ := build(t, "SELECT x * 2, y FROM R")
	if !strings.Contains(planString(p), "Compute") {
		t.Fatalf("expected node-side compute:\n%s", planString(p))
	}
}

func TestPlanFilterAndSargable(t *testing.T) {
	q, err := sql.Parse("SELECT x FROM R WHERE x = 42")
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Build(q, testCatalog(), Environment{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	scan := findScan(p.Root)
	if scan == nil {
		t.Fatal("no scan node")
	}
	if scan.Pred.Lo == nil || scan.Pred.Hi == nil {
		t.Fatalf("equality on key should produce both bounds: %+v", scan.Pred)
	}
	// The bounds must bracket exactly the encoding of 42.
	enc := tuple.AppendKeyValue(nil, tuple.I(42))
	if string(scan.Pred.Lo) != string(enc) {
		t.Fatalf("lo bound: %x", scan.Pred.Lo)
	}
	if !scan.Pred.Match(string(enc)) {
		t.Fatal("bound excludes the matching key")
	}
	enc43 := tuple.AppendKeyValue(nil, tuple.I(43))
	if scan.Pred.Match(string(enc43)) {
		t.Fatal("bound includes a non-matching key")
	}
}

func TestPlanRangeSargable(t *testing.T) {
	q, _ := sql.Parse("SELECT x FROM R WHERE x >= 10 AND x < 20")
	p, _, err := Build(q, testCatalog(), Environment{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	scan := findScan(p.Root)
	for v := int64(0); v < 30; v++ {
		enc := tuple.AppendKeyValue(nil, tuple.I(v))
		want := v >= 10 && v < 20
		if scan.Pred.Match(string(enc)) != want {
			t.Fatalf("v=%d: match=%v want %v", v, !want, want)
		}
	}
}

func TestPlanNonKeyFilterNotSargable(t *testing.T) {
	q, _ := sql.Parse("SELECT x FROM R WHERE y < 5")
	p, _, err := Build(q, testCatalog(), Environment{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	scan := findScan(p.Root)
	if scan.Pred.Lo != nil || scan.Pred.Hi != nil {
		t.Fatalf("non-key filter must not produce bounds: %+v", scan.Pred)
	}
	if !strings.Contains(planString(p), "Select") {
		t.Fatal("residual select missing")
	}
}

func findScan(n engine.Node) *engine.ScanNode {
	if s, ok := n.(*engine.ScanNode); ok {
		return s
	}
	for _, c := range n.Children() {
		if s := findScan(c); s != nil {
			return s
		}
	}
	return nil
}

func TestPlanJoinOnStorageKeySkipsRehash(t *testing.T) {
	// S is keyed on y; R.y is a foreign key. Joining on R.y = S.y means S
	// is already partitioned on the join key — only R needs a rehash.
	p, _ := build(t, "SELECT R.x, S.z FROM R, S WHERE R.y = S.y")
	str := planString(p)
	if c := strings.Count(str, "Rehash"); c != 1 {
		t.Fatalf("want exactly 1 rehash (S side colocated), got %d:\n%s", c, str)
	}
}

func TestPlanThreeWayJoin(t *testing.T) {
	p, info := build(t, "SELECT R.x FROM R, S, T WHERE R.y = S.y AND S.z = T.z")
	str := planString(p)
	if strings.Count(str, "Join") != 2 {
		t.Fatalf("want 2 joins:\n%s", str)
	}
	if info.JoinOrder == "" || info.GroupsExplored < 6 {
		t.Fatalf("search info: %+v", info)
	}
}

func TestPlanAggregatePartialForGlobal(t *testing.T) {
	p, info := build(t, "SELECT COUNT(*), SUM(y) FROM R")
	if info.AggMode != "partial" {
		t.Fatalf("global aggregate must be partial, got %q", info.AggMode)
	}
	hasFinalAgg := false
	for _, f := range p.Final {
		if _, ok := f.(*engine.FinalAgg); ok {
			hasFinalAgg = true
		}
	}
	if !hasFinalAgg {
		t.Fatalf("partial mode requires a final merge:\n%s", planString(p))
	}
}

func TestPlanGroupByChoosesMode(t *testing.T) {
	// Few groups (y has 500 distinct) → partial aggregation wins.
	_, info := build(t, "SELECT y, COUNT(*) FROM R GROUP BY y")
	if info.AggMode != "partial" {
		t.Fatalf("few groups should aggregate partially, got %q", info.AggMode)
	}
	// Grouping on the storage key: complete aggregation without rehash is
	// free, and the group count equals the row count (partial useless).
	p2, info2 := build(t, "SELECT x, COUNT(*) FROM R GROUP BY x")
	if info2.AggMode != "complete" {
		t.Fatalf("key-partitioned grouping should be complete, got %q", info2.AggMode)
	}
	if strings.Contains(planString(p2), "Rehash") {
		t.Fatalf("grouping on the storage key needs no rehash:\n%s", planString(p2))
	}
}

func TestPlanPaperRunningExample(t *testing.T) {
	// Example 5.1: SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x.
	p, _ := build(t, "SELECT x, MIN(z) FROM R, S WHERE R.y = S.y GROUP BY x")
	str := planString(p)
	if !strings.Contains(str, "Join") || !strings.Contains(str, "Aggregate") {
		t.Fatalf("missing join/aggregate:\n%s", str)
	}
}

func TestPlanOrderByAndLimit(t *testing.T) {
	p, _ := build(t, "SELECT y, COUNT(*) AS n FROM R GROUP BY y ORDER BY n DESC LIMIT 5")
	var haveSort, haveLimit bool
	for _, f := range p.Final {
		switch f.(type) {
		case *engine.FinalSort:
			haveSort = true
		case *engine.FinalLimit:
			haveLimit = true
		}
	}
	if !haveSort || !haveLimit {
		t.Fatalf("final ops missing:\n%s", planString(p))
	}
}

func TestPlanBushyConsidered(t *testing.T) {
	// With a chain R–S–T the search must still explore the bushy split
	// ({R,S},{T}) etc.; verify memoization covered the full lattice.
	_, info := build(t, "SELECT R.x FROM R, S, T WHERE R.y = S.y AND S.z = T.z")
	if info.GroupsExplored != 7 { // 2^3 - 1 subsets
		t.Fatalf("groups explored = %d, want 7", info.GroupsExplored)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []string{
		"SELECT x FROM Unknown",
		"SELECT nosuch FROM R",
		"SELECT R.x FROM R, S WHERE R.y = S.y GROUP BY R.x + 1",
		"SELECT * , COUNT(*) FROM R",
		"SELECT x FROM R ORDER BY nosuch",
		"SELECT y FROM R, S WHERE R.y = S.y", // ambiguous column y
	}
	for _, src := range cases {
		q, err := sql.Parse(src)
		if err != nil {
			continue // parse-level error also acceptable
		}
		if _, _, err := Build(q, testCatalog(), Environment{Nodes: 4}); err == nil {
			t.Errorf("Build(%q): expected error", src)
		}
	}
}

func TestPlanSerializableRoundTrip(t *testing.T) {
	p, _ := build(t, "SELECT R.x, S.z FROM R, S WHERE R.y = S.y AND S.z > 3")
	enc := engine.EncodePlan(p)
	dec, err := engine.DecodePlan(enc)
	if err != nil {
		t.Fatalf("optimized plan does not round trip: %v", err)
	}
	if dec.String() != p.String() {
		t.Fatalf("mismatch:\n%s\n%s", dec, p)
	}
}

func TestExplain(t *testing.T) {
	p, info := build(t, "SELECT y, COUNT(*) FROM R GROUP BY y")
	s := Explain(p, info)
	if !strings.Contains(s, "cost=") || !strings.Contains(s, "Aggregate") {
		t.Fatalf("explain output: %s", s)
	}
}

func TestPlanCoveringIndexScan(t *testing.T) {
	// Only the key column x is referenced: the scan reads the index pages
	// alone (Table I covering index scan).
	p, _ := build(t, "SELECT x FROM R WHERE x < 100")
	scan := findScan(p.Root)
	if !scan.Covering {
		t.Fatalf("expected covering scan:\n%s", planString(p))
	}
	// Touching a non-key column disables it.
	p2, _ := build(t, "SELECT x FROM R WHERE y < 100")
	if findScan(p2.Root).Covering {
		t.Fatalf("covering scan must not be used when y is referenced")
	}
	// Counting over keys only also covers.
	p3, _ := build(t, "SELECT COUNT(*) FROM R")
	if !findScan(p3.Root).Covering {
		t.Fatalf("count(*) should use covering scan:\n%s", planString(p3))
	}
}
