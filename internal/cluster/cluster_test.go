package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

func testCluster(t *testing.T, n int) *Local {
	t.Helper()
	l, err := NewLocal(n, Config{Replication: 3, MaxPageEntries: 32}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Shutdown)
	return l
}

func rSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	s, err := tuple.NewSchema("R",
		[]tuple.Column{{Name: "x", Type: tuple.String}, {Name: "y", Type: tuple.String}}, "x")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func insertRow(vals ...string) vstore.Update {
	row := make(tuple.Row, len(vals))
	for i, v := range vals {
		row[i] = tuple.S(v)
	}
	return vstore.Update{Op: vstore.OpInsert, Row: row}
}

func sortRows(rows []tuple.Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cmp(rows[j]) < 0 })
}

func TestPutGetRecordAcrossNodes(t *testing.T) {
	l := testCluster(t, 5)
	ctx := ctxT(t)
	placement := tuple.NewID(rSchema(t), tuple.Row{tuple.S("k"), tuple.S("v")}, 0).Hash()
	if err := l.Node(0).PutRecord(ctx, placement, []byte("t/demo"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Readable from any node.
	for i := 0; i < 5; i++ {
		v, err := l.Node(i).GetRecord(ctx, placement, []byte("t/demo"))
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if string(v) != "hello" {
			t.Fatalf("node %d read %q", i, v)
		}
	}
	// Record is on exactly r=3 nodes.
	copies := 0
	for i := 0; i < 5; i++ {
		if l.Node(i).Store().Has([]byte("t/demo")) {
			copies++
		}
	}
	if copies != 3 {
		t.Errorf("record on %d nodes, want 3", copies)
	}
	if _, err := l.Node(1).GetRecord(ctx, placement, []byte("t/missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing record: %v", err)
	}
}

func TestCreateRelationTwiceFails(t *testing.T) {
	l := testCluster(t, 3)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	if err := l.Node(1).CreateRelation(ctx, s); !errors.Is(err, ErrRelationExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := l.Node(2).GetCatalog(ctx, "R"); err != nil {
		t.Errorf("catalog not visible cluster-wide: %v", err)
	}
	if _, err := l.Node(0).GetCatalog(ctx, "nope"); !errors.Is(err, ErrNoSuchRelation) {
		t.Errorf("missing relation: %v", err)
	}
}

func TestPublishAndRetrieve(t *testing.T) {
	l := testCluster(t, 5)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var ups []vstore.Update
	for i := 0; i < 200; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i)))
	}
	epoch, err := l.Node(0).Publish(ctx, "R", ups)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("publish epoch must be positive")
	}
	// Retrieve from a different node.
	rows, err := l.Node(3).Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("retrieved %d rows, want 200", len(rows))
	}
	sortRows(rows)
	for i, r := range rows {
		if r[0].Str != fmt.Sprintf("key%03d", i) || r[1].Str != fmt.Sprintf("val%03d", i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestRetrievePointPredicate(t *testing.T) {
	l := testCluster(t, 4)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var ups []vstore.Update
	for i := 0; i < 50; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)))
	}
	epoch, err := l.Node(0).Publish(ctx, "R", ups)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := l.Node(2).Retrieve(ctx, "R", epoch, EqPred(s, tuple.S("k17")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].Str != "v17" {
		t.Fatalf("point lookup = %v", rows)
	}
}

func TestVersionedSnapshotsExample41(t *testing.T) {
	// The paper's running example, end to end on a 3-node cluster.
	l := testCluster(t, 3)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	e0, err := l.Node(0).Publish(ctx, "R", []vstore.Update{
		insertRow("a", "b"), insertRow("f", "z"),
	})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := l.Node(1).Publish(ctx, "R", []vstore.Update{
		insertRow("b", "c"), insertRow("e", "e"), insertRow("c", "f"),
		{Op: vstore.OpUpdate, Row: tuple.Row{tuple.S("f"), tuple.S("a")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := l.Node(2).Publish(ctx, "R", []vstore.Update{insertRow("d", "d")})
	if err != nil {
		t.Fatal(err)
	}
	if !(e0 < e1 && e1 < e2) {
		t.Fatalf("epochs not increasing: %d %d %d", e0, e1, e2)
	}

	check := func(at tuple.Epoch, want map[string]string) {
		t.Helper()
		rows, err := l.Node(0).Retrieve(ctx, "R", at, AllPred())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(want) {
			t.Fatalf("at epoch %d: %d rows, want %d (%v)", at, len(rows), len(want), rows)
		}
		for _, r := range rows {
			if want[r[0].Str] != r[1].Str {
				t.Errorf("at epoch %d: R(%s,%s), want y=%s", at, r[0].Str, r[1].Str, want[r[0].Str])
			}
		}
	}
	// Snapshot at e0: original f value.
	check(e0, map[string]string{"a": "b", "f": "z"})
	// Snapshot at e1: f modified, three inserts visible.
	check(e1, map[string]string{"a": "b", "f": "a", "b": "c", "e": "e", "c": "f"})
	// Snapshot at e2 (= current): everything.
	check(e2, map[string]string{"a": "b", "f": "a", "b": "c", "e": "e", "c": "f", "d": "d"})
}

func TestDeleteRemovesFromCurrentVersionOnly(t *testing.T) {
	l := testCluster(t, 3)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	e1, err := l.Node(0).Publish(ctx, "R", []vstore.Update{insertRow("a", "1"), insertRow("b", "2")})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := l.Node(0).Publish(ctx, "R", []vstore.Update{
		{Op: vstore.OpDelete, Row: tuple.Row{tuple.S("a"), tuple.S("")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := l.Node(1).Retrieve(ctx, "R", e2, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Str != "b" {
		t.Fatalf("after delete: %v", rows)
	}
	// Historical query still sees the deleted tuple.
	rows, err = l.Node(1).Retrieve(ctx, "R", e1, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("historical query lost data: %v", rows)
	}
}

func TestRetrieveSurvivesNodeFailure(t *testing.T) {
	l := testCluster(t, 6)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var ups []vstore.Update
	for i := 0; i < 300; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("key%04d", i), "v"))
	}
	epoch, err := l.Node(0).Publish(ctx, "R", ups)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one node; every record had 3 replicas, so retrieval must still
	// return the complete, correct answer via failover.
	l.Kill(NodeName(4))
	rows, err := l.Node(0).Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 300 {
		t.Fatalf("after failure: %d rows, want 300", len(rows))
	}
}

func TestMultiEpochAppendsAndPageSplits(t *testing.T) {
	// Small MaxPageEntries forces page splits across several publishes;
	// every epoch must remain a consistent snapshot.
	l := testCluster(t, 4)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var epochs []tuple.Epoch
	total := 0
	for round := 0; round < 5; round++ {
		var ups []vstore.Update
		for i := 0; i < 100; i++ {
			ups = append(ups, insertRow(fmt.Sprintf("r%d-k%03d", round, i), "v"))
		}
		e, err := l.Node(round%4).Publish(ctx, "R", ups)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		epochs = append(epochs, e)
		total += 100
	}
	for i, e := range epochs {
		rows, err := l.Node(0).Retrieve(ctx, "R", e, AllPred())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != (i+1)*100 {
			t.Fatalf("at epoch %d: %d rows, want %d", e, len(rows), (i+1)*100)
		}
	}
	_ = total
}

func TestAddNodeRebalanceKeepsData(t *testing.T) {
	l := testCluster(t, 4)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var ups []vstore.Update
	for i := 0; i < 200; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("key%04d", i), "v"))
	}
	epoch, err := l.Node(0).Publish(ctx, "R", ups)
	if err != nil {
		t.Fatal(err)
	}
	before := l.Table().Version()

	newNode, err := l.AddNode(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l.Table().Version() <= before {
		t.Error("table version must grow on join")
	}
	if l.Table().Size() != 5 {
		t.Errorf("table size = %d, want 5", l.Table().Size())
	}
	// Data retrievable from the new node and an old one.
	for _, n := range []*Node{newNode, l.Node(1)} {
		rows, err := n.Retrieve(ctx, "R", epoch, AllPred())
		if err != nil {
			t.Fatalf("%s: %v", n.ID(), err)
		}
		if len(rows) != 200 {
			t.Fatalf("%s: %d rows after join, want 200", n.ID(), len(rows))
		}
	}
	// The new node now holds a share of the data.
	if newNode.Store().Len() == 0 {
		t.Error("new node received no data from rebalance")
	}
}

func TestRemoveNodeGraceful(t *testing.T) {
	l := testCluster(t, 5)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var ups []vstore.Update
	for i := 0; i < 150; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("key%04d", i), "v"))
	}
	epoch, err := l.Node(0).Publish(ctx, "R", ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveNode(ctx, NodeName(2)); err != nil {
		t.Fatal(err)
	}
	if l.Table().Size() != 4 {
		t.Errorf("table size = %d, want 4", l.Table().Size())
	}
	rows, err := l.Node(0).Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 150 {
		t.Fatalf("after leave: %d rows, want 150", len(rows))
	}
}

func TestPublishAdvancesGossipEpoch(t *testing.T) {
	l := testCluster(t, 3)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	e1, err := l.Node(0).Publish(ctx, "R", []vstore.Update{insertRow("a", "1")})
	if err != nil {
		t.Fatal(err)
	}
	// A publish from another node must claim a later epoch even without
	// periodic gossip running: Next() pushes eagerly.
	deadline := time.Now().Add(2 * time.Second)
	for l.Node(1).Gossip().Current() < e1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	e2, err := l.Node(1).Publish(ctx, "R", []vstore.Update{insertRow("b", "2")})
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Errorf("second publish epoch %d <= first %d", e2, e1)
	}
}

func TestRetrieveBeforeRelationHadData(t *testing.T) {
	l := testCluster(t, 3)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	// Publish at some epoch; then query at epoch 0 (before any publish).
	if _, err := l.Node(0).Publish(ctx, "R", []vstore.Update{insertRow("a", "1")}); err != nil {
		t.Fatal(err)
	}
	rows, err := l.Node(1).Retrieve(ctx, "R", 0, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("pre-creation snapshot returned %d rows", len(rows))
	}
}

func TestColocationLimitsTraffic(t *testing.T) {
	// §IV: because index pages sit at the midpoint of their tuple range,
	// most tuple IDs never cross the network during a scan. We verify the
	// fetch-forward path stays mostly local: traffic for a full retrieve
	// should be dominated by the tuples shipped to the requester, not by
	// index→data forwarding. As a proxy, per-scan message count must be
	// far below one message per tuple.
	l := testCluster(t, 4)
	ctx := ctxT(t)
	s := rSchema(t)
	if err := l.Node(0).CreateRelation(ctx, s); err != nil {
		t.Fatal(err)
	}
	var ups []vstore.Update
	const n = 500
	for i := 0; i < n; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("key%05d", i), "value-payload"))
	}
	epoch, err := l.Node(0).Publish(ctx, "R", ups)
	if err != nil {
		t.Fatal(err)
	}
	l.Net.ResetStats()
	rows, err := l.Node(0).Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("%d rows", len(rows))
	}
	stats := l.Net.Stats()
	if stats.TotalMsgs > int64(n/2) {
		t.Errorf("scan used %d messages for %d tuples; colocation should batch heavily", stats.TotalMsgs, n)
	}
}
