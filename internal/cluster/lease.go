package cluster

// Per-relation publish leases. A publish is a distributed
// read-modify-write of the relation's catalog; within one process the
// per-relation mutex serializes it, but two *processes* publishing the
// same relation would race the catalog write and silently drop each
// other's pages. The lease closes that gap: before touching the catalog
// a publisher acquires a short-lived exclusive lease on the relation
// from an arbiter node, holds it across the publish, and releases it
// afterwards (expiry reclaims it if the publisher dies mid-publish).
//
// The arbiter is the first reachable replica of the relation's catalog
// placement, so in the common case the node that will commit the
// catalog write is also the node that granted the lease. Leases are
// deliberately in-memory: a restarted arbiter forgets its grants, which
// only shortens a lease — never extends one. When the primary arbiter
// is unreachable the acquirer falls back to the next replica; this is a
// best-effort mutual exclusion (a partition can elect two arbiters),
// matching the paper's crash-stop failure model rather than a full
// consensus lock service.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"orchestra/internal/ring"
	"orchestra/internal/vstore"
)

// defaultLeaseTTL bounds how long a dead publisher can block a relation.
const defaultLeaseTTL = 10 * time.Second

// relLease is one granted lease.
type relLease struct {
	owner  string
	fence  uint64
	expiry time.Time
}

// leaseTable is a node's arbiter state.
type leaseTable struct {
	mu     sync.Mutex
	leases map[string]*relLease
	fence  uint64
}

// grant acquires or refreshes the lease on relation for owner. It
// returns the fencing token on success, or the current holder and how
// long until its lease expires.
func (t *leaseTable) grant(relation, owner string, ttl time.Duration, now time.Time) (fence uint64, holder string, wait time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.leases == nil {
		t.leases = make(map[string]*relLease)
	}
	if l, ok := t.leases[relation]; ok && l.owner != owner && now.Before(l.expiry) {
		return 0, l.owner, time.Until(l.expiry)
	}
	t.fence++
	t.leases[relation] = &relLease{owner: owner, fence: t.fence, expiry: now.Add(ttl)}
	return t.fence, "", 0
}

// release drops owner's lease on relation (no-op for any other owner).
func (t *leaseTable) release(relation, owner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.leases[relation]; ok && l.owner == owner {
		delete(t.leases, relation)
	}
}

// --- wire codec ---

const (
	leaseOpAcquire = 0
	leaseOpRelease = 1
)

func encodeLeaseReq(op byte, relation, owner string, ttl time.Duration) []byte {
	out := []byte{op}
	out = appendBytes(out, []byte(relation))
	out = appendBytes(out, []byte(owner))
	return binary.BigEndian.AppendUint64(out, uint64(ttl/time.Millisecond))
}

func decodeLeaseReq(data []byte) (op byte, relation, owner string, ttl time.Duration, err error) {
	if len(data) < 1 {
		return 0, "", "", 0, errors.New("cluster: empty lease request")
	}
	op = data[0]
	rel, rest, err := readBytes(data[1:])
	if err != nil {
		return 0, "", "", 0, err
	}
	own, rest, err := readBytes(rest)
	if err != nil {
		return 0, "", "", 0, err
	}
	if len(rest) != 8 {
		return 0, "", "", 0, errors.New("cluster: truncated lease request")
	}
	ttl = time.Duration(binary.BigEndian.Uint64(rest)) * time.Millisecond
	return op, string(rel), string(own), ttl, nil
}

func encodeLeaseResp(fence uint64, holder string, wait time.Duration) []byte {
	granted := byte(0)
	if holder == "" {
		granted = 1
	}
	out := []byte{granted}
	out = binary.BigEndian.AppendUint64(out, fence)
	out = appendBytes(out, []byte(holder))
	return binary.BigEndian.AppendUint64(out, uint64(wait/time.Millisecond))
}

func decodeLeaseResp(data []byte) (granted bool, fence uint64, holder string, wait time.Duration, err error) {
	if len(data) < 9 {
		return false, 0, "", 0, errors.New("cluster: truncated lease response")
	}
	granted = data[0] == 1
	fence = binary.BigEndian.Uint64(data[1:9])
	h, rest, err := readBytes(data[9:])
	if err != nil {
		return false, 0, "", 0, err
	}
	if len(rest) != 8 {
		return false, 0, "", 0, errors.New("cluster: truncated lease response")
	}
	wait = time.Duration(binary.BigEndian.Uint64(rest)) * time.Millisecond
	return granted, fence, string(h), wait, nil
}

// registerLeaseHandler installs the arbiter RPC.
func (n *Node) registerLeaseHandler() {
	n.ep.Handle(msgRelLease, func(from ring.NodeID, payload []byte) ([]byte, error) {
		op, relation, owner, ttl, err := decodeLeaseReq(payload)
		if err != nil {
			return nil, err
		}
		switch op {
		case leaseOpRelease:
			n.leases.release(relation, owner)
			return encodeLeaseResp(0, "", 0), nil
		case leaseOpAcquire:
			if ttl <= 0 || ttl > time.Minute {
				ttl = defaultLeaseTTL
			}
			fence, holder, wait := n.leases.grant(relation, owner, ttl, time.Now())
			return encodeLeaseResp(fence, holder, wait), nil
		default:
			return nil, fmt.Errorf("cluster: unknown lease op %d", op)
		}
	})
}

// leaseArbiter returns the replicas eligible to arbitrate relation's
// publish lease: the replica set of its catalog placement, primary first.
func (n *Node) leaseArbiters(relation string) []ring.NodeID {
	return n.Table().Replicas(vstore.CatalogPlacement(relation))
}

// leaseCall performs one lease RPC against the first reachable arbiter.
func (n *Node) leaseCall(ctx context.Context, relation string, payload []byte) (granted bool, holder string, wait time.Duration, err error) {
	var lastErr error
	for _, rep := range n.leaseArbiters(relation) {
		var resp []byte
		if rep == n.id {
			resp, lastErr = func() ([]byte, error) {
				op, rel, owner, ttl, err := decodeLeaseReq(payload)
				if err != nil {
					return nil, err
				}
				if op == leaseOpRelease {
					n.leases.release(rel, owner)
					return encodeLeaseResp(0, "", 0), nil
				}
				fence, holder, wait := n.leases.grant(rel, owner, ttl, time.Now())
				return encodeLeaseResp(fence, holder, wait), nil
			}()
		} else {
			rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
			resp, lastErr = n.ep.Request(rctx, rep, msgRelLease, payload)
			cancel()
		}
		if lastErr != nil {
			continue // arbiter unreachable: fall back to the next replica
		}
		granted, _, holder, wait, err := decodeLeaseResp(resp)
		return granted, holder, wait, err
	}
	return false, "", 0, fmt.Errorf("%w: lease %s: %v", ErrUnavailable, relation, lastErr)
}

// acquireRelLease blocks until this node holds the publish lease on
// relation (or ctx expires) and returns the release function.
func (n *Node) acquireRelLease(ctx context.Context, relation string) (func(), error) {
	owner := string(n.id)
	acquire := encodeLeaseReq(leaseOpAcquire, relation, owner, defaultLeaseTTL)
	for {
		granted, holder, wait, err := n.leaseCall(ctx, relation, acquire)
		if err != nil {
			return nil, err
		}
		if granted {
			release := func() {
				rctx, cancel := context.WithTimeout(context.Background(), n.cfg.RequestTimeout)
				defer cancel()
				_, _, _, _ = n.leaseCall(rctx, relation, encodeLeaseReq(leaseOpRelease, relation, owner, 0))
			}
			return release, nil
		}
		// Held elsewhere: wait a slice of the holder's remaining TTL with
		// jitter so competing publishers don't stampede the arbiter.
		backoff := wait / 4
		if backoff < 5*time.Millisecond {
			backoff = 5 * time.Millisecond
		}
		if backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
		backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: publish lease on %s held by %s: %w", relation, holder, ctx.Err())
		case <-time.After(backoff):
		}
	}
}
