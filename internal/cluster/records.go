package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"orchestra/internal/keyspace"
	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
)

// RecordPut is one replicated record write: the ring placement key plus the
// local-store key/value to install at every replica.
type RecordPut struct {
	Placement keyspace.Key
	KVKey     []byte
	Value     []byte
}

// --- wire helpers ---

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytes(data []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || len(data) < n+int(l) {
		return nil, nil, errors.New("cluster: truncated field")
	}
	return data[n : n+int(l)], data[n+int(l):], nil
}

func encodePut(kvKey, value []byte) []byte {
	out := appendBytes(nil, kvKey)
	return appendBytes(out, value)
}

func decodePut(data []byte) (kvKey, value []byte, err error) {
	kvKey, rest, err := readBytes(data)
	if err != nil {
		return nil, nil, err
	}
	value, rest, err = readBytes(rest)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, errors.New("cluster: trailing bytes in put")
	}
	return kvKey, value, nil
}

func encodeBatch(items []RecordPut) []byte {
	out := binary.AppendUvarint(nil, uint64(len(items)))
	for _, it := range items {
		out = appendBytes(out, it.KVKey)
		out = appendBytes(out, it.Value)
	}
	return out
}

func decodeBatch(data []byte) ([][2][]byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errors.New("cluster: truncated batch")
	}
	data = data[n:]
	if count > 1<<26 {
		return nil, fmt.Errorf("cluster: implausible batch count %d", count)
	}
	out := make([][2][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		k, rest, err := readBytes(data)
		if err != nil {
			return nil, err
		}
		v, rest, err := readBytes(rest)
		if err != nil {
			return nil, err
		}
		data = rest
		out = append(out, [2][]byte{k, v})
	}
	return out, nil
}

// registerRecordHandlers installs the basic replicated-record RPCs.
func (n *Node) registerRecordHandlers() {
	n.ep.Handle(msgPutRecord, func(from ring.NodeID, payload []byte) ([]byte, error) {
		kvKey, value, err := decodePut(payload)
		if err != nil {
			return nil, err
		}
		return nil, n.store.Put(kvKey, value)
	})
	n.ep.Handle(msgPutBatch, func(from ring.NodeID, payload []byte) ([]byte, error) {
		items, err := decodeBatch(payload)
		if err != nil {
			return nil, err
		}
		kvs := make([]kvstore.KV, len(items))
		for i, it := range items {
			kvs[i] = kvstore.KV{Key: it[0], Val: it[1]}
		}
		// One store commit for the whole batch: under SyncAlways this is
		// what keeps a replicated publish at ~one fsync per destination.
		return nil, n.store.PutBatch(kvs)
	})
	n.ep.Handle(msgGetRecord, func(from ring.NodeID, payload []byte) ([]byte, error) {
		v, ok := n.store.Get(payload)
		if !ok {
			return []byte{0}, nil
		}
		return append([]byte{1}, v...), nil
	})
	n.ep.Handle(msgDelRecord, func(from ring.NodeID, payload []byte) ([]byte, error) {
		_, err := n.store.Delete(payload)
		return nil, err
	})
	n.ep.Handle(msgNewTable, func(from ring.NodeID, payload []byte) ([]byte, error) {
		t, err := ring.UnmarshalTable(payload)
		if err != nil {
			return nil, err
		}
		n.adoptTable(t)
		return nil, nil
	})
}

// PutRecord writes one record to all replicas of its placement key. Dead
// replicas are skipped; the write fails only if no replica accepted it.
func (n *Node) PutRecord(ctx context.Context, placement keyspace.Key, kvKey, value []byte) error {
	table := n.Table()
	payload := encodePut(kvKey, value)
	var firstErr error
	acked := 0
	for _, rep := range table.Replicas(placement) {
		if rep == n.id {
			if err := n.store.Put(kvKey, value); err != nil {
				return err
			}
			acked++
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		_, err := n.ep.Request(rctx, rep, msgPutRecord, payload)
		cancel()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		acked++
	}
	if acked == 0 {
		return fmt.Errorf("%w: put %q: %v", ErrUnavailable, kvKey, firstErr)
	}
	return nil
}

// PutRecords writes a set of records, grouping them into one batch message
// per destination node — the destination-batched shipping of §V-A applied
// to the bulk-load path.
func (n *Node) PutRecords(ctx context.Context, items []RecordPut) error {
	table := n.Table()
	byDest := make(map[ring.NodeID][]RecordPut)
	for _, it := range items {
		for _, rep := range table.Replicas(it.Placement) {
			byDest[rep] = append(byDest[rep], it)
		}
	}
	// Local writes first, as one batched commit.
	if locals := byDest[n.id]; len(locals) > 0 {
		kvs := make([]kvstore.KV, len(locals))
		for i, it := range locals {
			kvs[i] = kvstore.KV{Key: it.KVKey, Val: it.Value}
		}
		if err := n.store.PutBatch(kvs); err != nil {
			return err
		}
	}
	delete(byDest, n.id)
	type result struct {
		dest ring.NodeID
		err  error
	}
	results := make(chan result, len(byDest))
	for dest, its := range byDest {
		go func(dest ring.NodeID, its []RecordPut) {
			rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
			defer cancel()
			_, err := n.ep.Request(rctx, dest, msgPutBatch, encodeBatch(its))
			results <- result{dest, err}
		}(dest, its)
	}
	var failed []ring.NodeID
	for range byDest {
		r := <-results
		if r.err != nil {
			failed = append(failed, r.dest)
		}
	}
	if len(failed) == len(byDest) && len(byDest) > 0 {
		return fmt.Errorf("%w: bulk put failed at all %d destinations", ErrUnavailable, len(failed))
	}
	return nil
}

// GetRecord reads a record, trying the owner first and falling back to the
// other replicas (§IV: "proactively try to retrieve the missing state from
// other nearby nodes"). ErrNotFound means every reachable replica lacks it.
func (n *Node) GetRecord(ctx context.Context, placement keyspace.Key, kvKey []byte) ([]byte, error) {
	table := n.Table()
	var lastErr error
	sawReplica := false
	for _, rep := range table.Replicas(placement) {
		if rep == n.id {
			sawReplica = true
			if v, ok := n.store.Get(kvKey); ok {
				return v, nil
			}
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		resp, err := n.ep.Request(rctx, rep, msgGetRecord, kvKey)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		sawReplica = true
		if len(resp) >= 1 && resp[0] == 1 {
			return resp[1:], nil
		}
	}
	if !sawReplica {
		return nil, fmt.Errorf("%w: get %q: %v", ErrUnavailable, kvKey, lastErr)
	}
	return nil, fmt.Errorf("%w: %q", ErrNotFound, kvKey)
}

// DeleteRecord removes a record from all replicas (best effort).
func (n *Node) DeleteRecord(ctx context.Context, placement keyspace.Key, kvKey []byte) error {
	table := n.Table()
	for _, rep := range table.Replicas(placement) {
		if rep == n.id {
			if _, err := n.store.Delete(kvKey); err != nil {
				return err
			}
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		_, _ = n.ep.Request(rctx, rep, msgDelRecord, kvKey)
		cancel()
	}
	return nil
}
