package cluster

import (
	"context"
	"fmt"
	"time"

	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
)

// Local is an in-process ORCHESTRA cluster over the simulated network: the
// deployment used by tests, examples, and the experiment harness. All
// messages are genuinely encoded, shaped, and accounted by the transport;
// only the processes are colocated.
type Local struct {
	Net   *transport.Network
	cfg   Config
	nodes []*Node
	byID  map[ring.NodeID]*Node
}

// NodeName returns the canonical name of the i'th local node.
func NodeName(i int) ring.NodeID {
	return ring.NodeID(fmt.Sprintf("orch-%03d", i))
}

// NewLocal builds an n-node cluster with balanced range allocation.
func NewLocal(n int, cfg Config, netCfg transport.Config) (*Local, error) {
	return NewLocalScheme(n, cfg, netCfg, ring.Balanced)
}

// NewLocalWeighted builds a cluster whose range allocation is proportional
// to per-node capacity weights — the load-balancing extension of paper
// §VIII (future work): nodes with more capacity own more key space.
func NewLocalWeighted(capacities []float64, cfg Config, netCfg transport.Config) (*Local, error) {
	cfg = cfg.withDefaults()
	weights := make([]ring.Weight, len(capacities))
	for i, c := range capacities {
		weights[i] = ring.Weight{ID: NodeName(i), Capacity: c}
	}
	table, err := ring.NewWeighted(weights, cfg.Replication)
	if err != nil {
		return nil, err
	}
	l := &Local{
		Net:  transport.NewNetwork(netCfg),
		cfg:  cfg,
		byID: make(map[ring.NodeID]*Node, len(capacities)),
	}
	for _, w := range weights {
		node, err := l.join(w.ID, table)
		if err != nil {
			l.Shutdown()
			return nil, err
		}
		l.nodes = append(l.nodes, node)
		l.byID[w.ID] = node
	}
	return l, nil
}

// NewLocalScheme builds an n-node cluster with the given allocation scheme.
func NewLocalScheme(n int, cfg Config, netCfg transport.Config, scheme ring.Scheme) (*Local, error) {
	cfg = cfg.withDefaults()
	ids := make([]ring.NodeID, n)
	for i := range ids {
		ids[i] = NodeName(i)
	}
	table, err := ring.New(ids, scheme, cfg.Replication)
	if err != nil {
		return nil, err
	}
	l := &Local{
		Net:  transport.NewNetwork(netCfg),
		cfg:  cfg,
		byID: make(map[ring.NodeID]*Node, n),
	}
	for _, id := range ids {
		node, err := l.join(id, table)
		if err != nil {
			l.Shutdown()
			return nil, err
		}
		l.nodes = append(l.nodes, node)
		l.byID[id] = node
	}
	return l, nil
}

// join opens the node's store (durable when cfg.OpenStore is set),
// joins the network, and constructs the node.
func (l *Local) join(id ring.NodeID, table *ring.Table) (*Node, error) {
	store, err := l.openStore(id)
	if err != nil {
		return nil, err
	}
	ep, err := l.Net.Join(id)
	if err != nil {
		store.Close()
		return nil, err
	}
	return NewNode(ep, store, table, l.cfg), nil
}

func (l *Local) openStore(id ring.NodeID) (*kvstore.Store, error) {
	if l.cfg.OpenStore == nil {
		return kvstore.NewMemory(), nil
	}
	store, err := l.cfg.OpenStore(id)
	if err != nil {
		return nil, fmt.Errorf("cluster: open store for %s: %w", id, err)
	}
	return store, nil
}

// Nodes returns all nodes (including killed ones; check Alive).
func (l *Local) Nodes() []*Node { return l.nodes }

// Node returns the i'th node.
func (l *Local) Node(i int) *Node { return l.nodes[i] }

// ByID returns the node with the given identity.
func (l *Local) ByID(id ring.NodeID) *Node { return l.byID[id] }

// Table returns the first live node's routing table.
func (l *Local) Table() *ring.Table {
	for _, n := range l.nodes {
		if l.Net.Alive(n.ID()) {
			return n.Table()
		}
	}
	return nil
}

// Kill abruptly fails a node (connection drops everywhere).
func (l *Local) Kill(id ring.NodeID) { l.Net.Kill(id) }

// Hang simulates a hung node (connections stay up; only pings detect it).
func (l *Local) Hang(id ring.NodeID) { l.Net.Hang(id) }

// Restart brings a killed node back under the same identity: its store
// is reopened (recovering from WAL/snapshot when durable), it rejoins
// the network fabric, and it repairs itself from its peers — WAL
// catch-up for the delta it missed, state transfer if the peers'
// logs have been truncated past its position. The table membership is
// unchanged (the node was killed, not removed), so no rebalance runs.
func (l *Local) Restart(ctx context.Context, id ring.NodeID) (*Node, error) {
	old := l.byID[id]
	if old == nil {
		return nil, fmt.Errorf("cluster: unknown node %s", id)
	}
	if l.Net.Alive(id) {
		return nil, fmt.Errorf("cluster: node %s is still alive", id)
	}
	table := l.Table()
	if table == nil {
		return nil, fmt.Errorf("cluster: no live node to rejoin from")
	}
	// Release the dead instance's store so the same directory can be
	// reopened (the in-process analogue of the process having exited).
	old.Close()
	old.Store().Close()

	node, err := l.join(id, table)
	if err != nil {
		return nil, err
	}
	for i, n := range l.nodes {
		if n == old {
			l.nodes[i] = node
		}
	}
	l.byID[id] = node
	// Adopt the latest epoch, then pull everything missed while down.
	node.Gossip().Sync(ctx, table.Members())
	if err := node.Repair(ctx); err != nil {
		return node, err
	}
	return node, nil
}

// AddNode joins a fresh node: it receives the next canonical name, a new
// balanced table is broadcast, and every prior member rebalances its data
// to the new allocation. Per §V-C the new node participates only in queries
// whose snapshot is taken after the join.
func (l *Local) AddNode(ctx context.Context) (*Node, error) {
	id := NodeName(len(l.nodes))
	node, err := l.join(id, l.Table())
	if err != nil {
		return nil, err
	}
	oldTable := l.Table()
	newTable, err := oldTable.WithMembers(append(oldTable.Members(), id))
	if err != nil {
		return nil, err
	}
	if err := node.BroadcastTable(ctx, newTable); err != nil {
		return nil, err
	}
	// Pull the current epoch from the existing members so queries initiated
	// at the newcomer immediately see the latest published state.
	node.Gossip().Sync(ctx, oldTable.Members())
	for _, n := range l.nodes {
		if !l.Net.Alive(n.ID()) {
			continue
		}
		if err := n.Rebalance(ctx, oldTable, newTable); err != nil {
			return nil, err
		}
	}
	l.nodes = append(l.nodes, node)
	l.byID[id] = node
	return node, nil
}

// RemoveNode gracefully retires a node: a fresh table without it is
// broadcast, data is rebalanced (including by the leaver), and the node
// closes.
func (l *Local) RemoveNode(ctx context.Context, id ring.NodeID) error {
	node := l.byID[id]
	if node == nil {
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	oldTable := l.Table()
	var rest []ring.NodeID
	for _, m := range oldTable.Members() {
		if m != id {
			rest = append(rest, m)
		}
	}
	newTable, err := oldTable.WithMembers(rest)
	if err != nil {
		return err
	}
	if err := node.BroadcastTable(ctx, newTable, id); err != nil {
		return err
	}
	// The leaver still rebalances by the old table, shipping away data it
	// alone holds.
	for _, n := range l.nodes {
		if !l.Net.Alive(n.ID()) {
			continue
		}
		if err := n.Rebalance(ctx, oldTable, newTable); err != nil {
			return err
		}
	}
	node.Close()
	node.Store().Close()
	delete(l.byID, id)
	for i, n := range l.nodes {
		if n == node {
			l.nodes = append(l.nodes[:i], l.nodes[i+1:]...)
			break
		}
	}
	return nil
}

// StartPingers begins hung-node detection on every node.
func (l *Local) StartPingers(interval, timeout time.Duration) {
	for _, n := range l.nodes {
		n.StartPinger(interval, timeout)
	}
}

// Shutdown stops every node, closes (flushes and syncs) every local
// store, and stops the network fabric.
func (l *Local) Shutdown() {
	for _, n := range l.nodes {
		n.Close()
	}
	for _, n := range l.nodes {
		n.Store().Close()
	}
	l.Net.Shutdown()
}
