package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"orchestra/internal/kvstore"
	"orchestra/internal/netfault"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
)

// reserveAddr grabs a free localhost port and releases it so a TCP
// endpoint can listen there with a dialable identity.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestWalShipTruncatedByProxy exercises the walship wire op over a real
// TCP link through the netfault proxy: a mid-frame RST must surface as a
// clean request failure (no partial apply, no hang), and once the fault
// clears a retry of the same request streams the full log.
func TestWalShipTruncatedByProxy(t *testing.T) {
	store := kvstore.NewMemory()
	want := make(map[string]string, 40)
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("t/ship%03d", i)
		v := fmt.Sprintf("val%03d", i)
		if err := store.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}

	serverEP, err := transport.ListenTCP(reserveAddr(t))
	if err != nil {
		t.Fatal(err)
	}
	table, err := ring.New([]ring.NodeID{serverEP.ID()}, ring.Balanced, 1)
	if err != nil {
		t.Fatal(err)
	}
	server := NewNode(serverEP, store, table, Config{Replication: 1})
	t.Cleanup(func() {
		server.Close()
		serverEP.Close()
	})

	proxy, err := netfault.New("127.0.0.1:0", serverEP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	client, err := transport.ListenTCP(reserveAddr(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	via := ring.NodeID(proxy.Addr())

	// Sever the stream mid-frame: the proxy forwards 20 bytes of the
	// request and RSTs, so the server never sees a complete frame and the
	// client's request must fail (by reset or by deadline), not hang.
	proxy.SetFaults(netfault.Faults{TruncateAfter: 20})
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	_, err = client.Request(ctx, via, msgWalShip, encodeShipReq(0, 1<<20))
	cancel()
	if err == nil {
		t.Fatal("walship through a truncating proxy must fail")
	}
	if s := proxy.Stats(); s.Resets == 0 {
		t.Fatalf("proxy reported no resets: %+v", s)
	}

	// Fault cleared: the identical request must now succeed. The first
	// attempts may still hit the client's cached-but-reset connection, so
	// retry briefly.
	proxy.Clear()
	var resp []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err = client.Request(rctx, via, msgWalShip, encodeShipReq(0, 1<<20))
		rcancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("walship never succeeded after fault cleared: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	recs, more, truncated, err := decodeShipResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	if more || truncated {
		t.Fatalf("unexpected flags: more=%v truncated=%v", more, truncated)
	}
	if len(recs) != len(want) {
		t.Fatalf("shipped %d records, want %d", len(recs), len(want))
	}
	if recs[0].Seq != 1 {
		t.Fatalf("first shipped seq = %d, want 1", recs[0].Seq)
	}
	for _, rec := range recs {
		op, err := rec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if op.Del || want[string(op.Key)] != string(op.Val) {
			t.Fatalf("record %d decoded to %q=%q del=%v", rec.Seq, op.Key, op.Val, op.Del)
		}
	}
}
