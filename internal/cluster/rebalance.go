package cluster

import (
	"context"
	"fmt"

	"orchestra/internal/keyspace"
	"orchestra/internal/ring"
	"orchestra/internal/vstore"
)

// BroadcastTable disseminates a new routing table to every member (and to
// any extra recipients, e.g. a node about to join). Nodes ignore stale
// versions, so repeated broadcasts are harmless.
func (n *Node) BroadcastTable(ctx context.Context, t *ring.Table, extra ...ring.NodeID) error {
	data, err := t.MarshalBinary()
	if err != nil {
		return err
	}
	targets := append(t.Members(), extra...)
	var lastErr error
	for _, m := range targets {
		if m == n.id {
			n.adoptTable(t)
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		_, err := n.ep.Request(rctx, m, msgNewTable, data)
		cancel()
		if err != nil {
			lastErr = err
		}
	}
	n.adoptTable(t)
	return lastErr
}

// placementOf reconstructs the ring placement key of a locally stored
// record from its key (and, for pages, its value).
func placementOf(kvKey, value []byte) (keyspace.Key, bool) {
	if len(kvKey) < 2 {
		return keyspace.Key{}, false
	}
	switch {
	case kvKey[0] == 'c' && kvKey[1] == '/':
		return vstore.CatalogPlacement(string(kvKey[2:])), true
	case kvKey[0] == 'r' && kvKey[1] == '/':
		// r/<relation>\x00<epoch:8>
		rest := kvKey[2:]
		if len(rest) < 9 {
			return keyspace.Key{}, false
		}
		rel := string(rest[:len(rest)-9])
		c, err := vstore.DecodeCoordinator(value)
		if err != nil || c.Relation != rel {
			// Fall back to decoding the record, which is authoritative.
			if err != nil {
				return keyspace.Key{}, false
			}
		}
		return vstore.CoordPlacement(c.Relation, c.Epoch), true
	case kvKey[0] == 'p' && kvKey[1] == '/':
		p, err := vstore.DecodePage(value)
		if err != nil {
			return keyspace.Key{}, false
		}
		return p.Ref.Placement(), true
	case kvKey[0] == 't' && kvKey[1] == '/':
		h, ok := vstore.TupleKeyHash(kvKey)
		return h, ok
	default:
		return keyspace.Key{}, false
	}
}

// Rebalance redistributes this node's records after a membership change
// from oldTable to newTable: records gain copies at their new replicas and
// are dropped from nodes that no longer replicate them. To avoid duplicate
// shipping, for each record only the first surviving member of its old
// replica set pushes (pushes are idempotent puts, so overlap is harmless).
// This is the explicit range-redistribution step of §III-C — the paper
// notes that under balanced allocation "a single node arrival or departure
// will cause all the ranges to change slightly", trading membership-change
// cost for uniform distribution.
func (n *Node) Rebalance(ctx context.Context, oldTable, newTable *ring.Table) error {
	type destBatch struct {
		items []RecordPut
	}
	pushes := make(map[ring.NodeID]*destBatch)
	var drops [][]byte

	n.store.Scan(nil, nil, func(k, v []byte) bool {
		placement, ok := placementOf(k, v)
		if !ok {
			return true
		}
		oldReps := oldTable.Replicas(placement)
		newReps := newTable.Replicas(placement)

		// Elect the pusher: first old replica that survives into the new
		// membership.
		pusher := ring.NodeID("")
		for _, r := range oldReps {
			if newTable.Contains(r) {
				pusher = r
				break
			}
		}
		inNew := false
		for _, r := range newReps {
			if r == n.id {
				inNew = true
				break
			}
		}
		if pusher == n.id {
			for _, r := range newReps {
				if r == n.id {
					continue
				}
				alreadyOld := false
				for _, o := range oldReps {
					if o == r {
						alreadyOld = true
						break
					}
				}
				if alreadyOld {
					continue // r already holds it
				}
				b := pushes[r]
				if b == nil {
					b = &destBatch{}
					pushes[r] = b
				}
				b.items = append(b.items, RecordPut{
					Placement: placement,
					KVKey:     append([]byte(nil), k...),
					Value:     append([]byte(nil), v...),
				})
			}
		}
		if !inNew {
			drops = append(drops, append([]byte(nil), k...))
		}
		return true
	})

	var lastErr error
	for dest, batch := range pushes {
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		_, err := n.ep.Request(rctx, dest, msgPutBatch, encodeBatch(batch.items))
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("cluster: rebalance push to %s: %w", dest, err)
		}
	}
	if lastErr != nil {
		// Keep the records we failed to move; a later rebalance retries.
		return lastErr
	}
	for _, k := range drops {
		if _, err := n.store.Delete(k); err != nil {
			return err
		}
	}
	return nil
}
