package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/keyspace"
	"orchestra/internal/ring"
	"orchestra/internal/vstore"
)

// BroadcastTable disseminates a new routing table to every member (and to
// any extra recipients, e.g. a node about to join). Nodes ignore stale
// versions, so repeated broadcasts are harmless.
func (n *Node) BroadcastTable(ctx context.Context, t *ring.Table, extra ...ring.NodeID) error {
	data, err := t.MarshalBinary()
	if err != nil {
		return err
	}
	targets := append(t.Members(), extra...)
	var lastErr error
	for _, m := range targets {
		if m == n.id {
			n.adoptTable(t)
			continue
		}
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		_, err := n.ep.Request(rctx, m, msgNewTable, data)
		cancel()
		if err != nil {
			lastErr = err
		}
	}
	n.adoptTable(t)
	return lastErr
}

// placementOf reconstructs the ring placement key of a locally stored
// record from its key (and, for pages, its value).
func placementOf(kvKey, value []byte) (keyspace.Key, bool) {
	if len(kvKey) < 2 {
		return keyspace.Key{}, false
	}
	switch {
	case kvKey[0] == 'c' && kvKey[1] == '/':
		return vstore.CatalogPlacement(string(kvKey[2:])), true
	case kvKey[0] == 'r' && kvKey[1] == '/':
		// r/<relation>\x00<epoch:8>
		rest := kvKey[2:]
		if len(rest) < 9 {
			return keyspace.Key{}, false
		}
		rel := string(rest[:len(rest)-9])
		c, err := vstore.DecodeCoordinator(value)
		if err != nil || c.Relation != rel {
			// Fall back to decoding the record, which is authoritative.
			if err != nil {
				return keyspace.Key{}, false
			}
		}
		return vstore.CoordPlacement(c.Relation, c.Epoch), true
	case kvKey[0] == 'p' && kvKey[1] == '/':
		p, err := vstore.DecodePage(value)
		if err != nil {
			return keyspace.Key{}, false
		}
		return p.Ref.Placement(), true
	case kvKey[0] == 't' && kvKey[1] == '/':
		h, ok := vstore.TupleKeyHash(kvKey)
		return h, ok
	default:
		return keyspace.Key{}, false
	}
}

// Rebalance redistributes this node's records after a membership change
// from oldTable to newTable: records gain copies at their new replicas and
// are dropped from nodes that no longer replicate them. To avoid duplicate
// shipping, for each record only the first surviving member of its old
// replica set pushes (pushes are idempotent puts, so overlap is harmless).
// This is the explicit range-redistribution step of §III-C — the paper
// notes that under balanced allocation "a single node arrival or departure
// will cause all the ranges to change slightly", trading membership-change
// cost for uniform distribution.
func (n *Node) Rebalance(ctx context.Context, oldTable, newTable *ring.Table) error {
	type destBatch struct {
		items []RecordPut
	}
	pushes := make(map[ring.NodeID]*destBatch)
	var drops [][]byte

	n.store.Scan(nil, nil, func(k, v []byte) bool {
		placement, ok := placementOf(k, v)
		if !ok {
			return true
		}
		oldReps := oldTable.Replicas(placement)
		newReps := newTable.Replicas(placement)

		// Elect the pusher: first old replica that survives into the new
		// membership.
		pusher := ring.NodeID("")
		for _, r := range oldReps {
			if newTable.Contains(r) {
				pusher = r
				break
			}
		}
		inNew := false
		for _, r := range newReps {
			if r == n.id {
				inNew = true
				break
			}
		}
		if pusher == n.id {
			for _, r := range newReps {
				if r == n.id {
					continue
				}
				alreadyOld := false
				for _, o := range oldReps {
					if o == r {
						alreadyOld = true
						break
					}
				}
				if alreadyOld {
					continue // r already holds it
				}
				b := pushes[r]
				if b == nil {
					b = &destBatch{}
					pushes[r] = b
				}
				b.items = append(b.items, RecordPut{
					Placement: placement,
					KVKey:     append([]byte(nil), k...),
					Value:     append([]byte(nil), v...),
				})
			}
		}
		if !inNew {
			drops = append(drops, append([]byte(nil), k...))
		}
		return true
	})

	var lastErr error
	for dest, batch := range pushes {
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		_, err := n.ep.Request(rctx, dest, msgPutBatch, encodeBatch(batch.items))
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("cluster: rebalance push to %s: %w", dest, err)
			// Hand the failed batch to the background retry queue, which
			// re-routes under whatever table is current at retry time.
			n.enqueueRetry(batch.items)
		}
	}
	if lastErr != nil {
		// Keep the records we failed to move until a retry lands them.
		return lastErr
	}
	for _, k := range drops {
		if _, err := n.store.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// Failed rebalance pushes used to be kept "for a later rebalance" that
// nothing ever scheduled — the records sat on the old replica invisibly
// until the next membership change. The retry queue below owns them
// instead: a background goroutine re-pushes each batch through
// PutRecords (which re-routes under the table current at retry time)
// with exponential backoff, and gives up after maxRetryAttempts, at
// which point the records count as stranded. Stranded records are still
// recoverable: they remain in this node's store, and the anti-entropy
// pass (repair.go) will surface the divergence.

// Variables so tests can compress the backoff schedule.
var (
	retryBaseDelay   = 250 * time.Millisecond
	retryMaxDelay    = 30 * time.Second
	maxRetryAttempts = 8
)

// retryState is the Node's failed-push retry queue.
type retryState struct {
	mu      sync.Mutex
	pending []retryBatch
	wake    chan struct{} // signaled when pending grows
	stop    chan struct{}
	started bool
	stopped atomic.Bool

	retried  atomic.Uint64 // records successfully re-pushed
	stranded atomic.Uint64 // records given up on after maxRetryAttempts
}

type retryBatch struct {
	items    []RecordPut
	attempts int
	due      time.Time
}

// RetryQueueStats reports the retry queue's depth and outcome counters:
// queued is the number of records awaiting a retry, retried counts
// records eventually pushed, stranded counts records abandoned after
// the attempt cap.
func (n *Node) RetryQueueStats() (queued int, retried, stranded uint64) {
	n.retry.mu.Lock()
	for _, b := range n.retry.pending {
		queued += len(b.items)
	}
	n.retry.mu.Unlock()
	return queued, n.retry.retried.Load(), n.retry.stranded.Load()
}

// enqueueRetry adds failed-push records to the retry queue, starting the
// background drainer on first use.
func (n *Node) enqueueRetry(items []RecordPut) {
	if len(items) == 0 || n.retry.stopped.Load() {
		return
	}
	n.retry.mu.Lock()
	if !n.retry.started {
		n.retry.started = true
		n.retry.wake = make(chan struct{}, 1)
		n.retry.stop = make(chan struct{})
		go n.retryLoop()
	}
	n.retry.pending = append(n.retry.pending, retryBatch{
		items: items,
		due:   time.Now().Add(retryBaseDelay),
	})
	wake := n.retry.wake
	n.retry.mu.Unlock()
	select {
	case wake <- struct{}{}:
	default:
	}
}

func (n *Node) stopRetry() {
	n.retry.mu.Lock()
	defer n.retry.mu.Unlock()
	if n.retry.started && n.retry.stopped.CompareAndSwap(false, true) {
		close(n.retry.stop)
	}
}

// retryLoop drains the queue: due batches are re-pushed via PutRecords;
// failures go back with doubled delay until the attempt cap.
func (n *Node) retryLoop() {
	timer := time.NewTimer(retryBaseDelay)
	defer timer.Stop()
	for {
		n.retry.mu.Lock()
		var due []retryBatch
		rest := n.retry.pending[:0]
		now := time.Now()
		next := now.Add(retryMaxDelay)
		for _, b := range n.retry.pending {
			if !b.due.After(now) {
				due = append(due, b)
			} else {
				if b.due.Before(next) {
					next = b.due
				}
				rest = append(rest, b)
			}
		}
		n.retry.pending = rest
		stop, wake := n.retry.stop, n.retry.wake
		n.retry.mu.Unlock()

		for _, b := range due {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RequestTimeout)
			err := n.PutRecords(ctx, b.items)
			cancel()
			if err == nil {
				n.retry.retried.Add(uint64(len(b.items)))
				continue
			}
			b.attempts++
			if b.attempts >= maxRetryAttempts {
				n.retry.stranded.Add(uint64(len(b.items)))
				continue
			}
			delay := retryBaseDelay << b.attempts
			if delay > retryMaxDelay {
				delay = retryMaxDelay
			}
			b.due = time.Now().Add(delay)
			n.retry.mu.Lock()
			n.retry.pending = append(n.retry.pending, b)
			n.retry.mu.Unlock()
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Until(next))
		select {
		case <-stop:
			return
		case <-wake:
		case <-timer.C:
		}
	}
}
