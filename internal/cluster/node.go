// Package cluster binds the substrate together into running ORCHESTRA
// storage nodes: each Node couples a transport endpoint, the shared routing
// table, a local ordered store, and the epoch gossiper, and implements the
// distributed versioned storage protocol of paper §III-IV — replicated
// record writes, replica-fallback reads, the publish (copy-on-write) path,
// Algorithm 1 retrieval with index→data-node bypass, and membership changes
// with range redistribution.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"orchestra/internal/gossip"
	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
)

// Message types used by the storage layer (engine types live in 0x0200+).
const (
	msgPutRecord  transport.MsgType = 0x0100
	msgPutBatch   transport.MsgType = 0x0101
	msgGetRecord  transport.MsgType = 0x0102
	msgScanPage   transport.MsgType = 0x0103
	msgFetchFwd   transport.MsgType = 0x0104
	msgScanResult transport.MsgType = 0x0105
	msgNewTable   transport.MsgType = 0x0106
	msgDelRecord  transport.MsgType = 0x0107
	msgRelLease   transport.MsgType = 0x0108
)

// Errors surfaced by storage operations.
var (
	// ErrNotFound indicates no live replica holds the requested record.
	ErrNotFound = errors.New("cluster: record not found")
	// ErrNoSuchRelation indicates the relation has no catalog.
	ErrNoSuchRelation = errors.New("cluster: no such relation")
	// ErrRelationExists indicates a CreateRelation for an existing name.
	ErrRelationExists = errors.New("cluster: relation already exists")
	// ErrUnavailable indicates all replicas for a record are unreachable.
	ErrUnavailable = errors.New("cluster: no replica reachable")
)

// Config tunes a node.
type Config struct {
	// Replication is the total copy count r (default 3).
	Replication int
	// MaxPageEntries bounds index page size (default vstore's).
	MaxPageEntries int
	// RequestTimeout bounds individual storage RPCs (default 10s).
	RequestTimeout time.Duration
	// OpenStore provides each node's local store — the durability seam.
	// nil means volatile in-memory stores. Stores opened through this
	// are owned (and closed) by the Local cluster.
	OpenStore func(id ring.NodeID) (*kvstore.Store, error)
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.MaxPageEntries <= 0 {
		c.MaxPageEntries = 512
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// Node is one ORCHESTRA storage/query node.
type Node struct {
	id     ring.NodeID
	ep     transport.Endpoint
	store  *kvstore.Store
	gsp    *gossip.Gossiper
	cfg    Config
	pinger *transport.Pinger

	mu    sync.RWMutex
	table *ring.Table

	scanMu   sync.Mutex
	scans    map[uint64]*scanCollector
	nextScan uint64
	downMu   sync.Mutex
	downSubs []func(ring.NodeID)

	pubMu   sync.Mutex
	pubRels map[string]*sync.Mutex

	// leases is this node's publish-lease arbiter state (see lease.go).
	leases leaseTable

	// repair holds the replica-repair counters and anti-entropy loop
	// (see repair.go).
	repair repairState

	// retry is the failed-rebalance-push retry queue (see rebalance.go).
	retry retryState
}

// NewNode constructs a node on an endpoint with a local store and the
// initial routing table, and registers all storage message handlers.
func NewNode(ep transport.Endpoint, store *kvstore.Store, table *ring.Table, cfg Config) *Node {
	n := &Node{
		id:      ep.ID(),
		ep:      ep,
		store:   store,
		cfg:     cfg.withDefaults(),
		table:   table,
		scans:   make(map[uint64]*scanCollector),
		pubRels: make(map[string]*sync.Mutex),
	}
	n.gsp = gossip.New(ep, int64(ep.ID().Hash().Uint64()))
	n.gsp.SetPeers(table.Members())
	// Epochs learned through gossip are persisted so a restart resumes
	// at (at least) the last epoch this node ever saw; a durable store
	// that recovered an epoch seeds the gossiper with it.
	n.gsp.OnAdvance(func(e tuple.Epoch) { _ = store.SetEpoch(uint64(e)) })
	if e := store.Epoch(); e > 0 {
		n.gsp.Advance(tuple.Epoch(e))
	}
	// Gossip piggybacks our shipping position so peers can account lag.
	n.gsp.SeqFn(store.Seq)
	n.registerHandlers()
	ep.OnPeerDown(n.notifyDown)
	return n
}

// ID returns the node's identity.
func (n *Node) ID() ring.NodeID { return n.id }

// Endpoint exposes the transport endpoint (the query engine shares it).
func (n *Node) Endpoint() transport.Endpoint { return n.ep }

// Store exposes the local ordered store (the engine's leaf scans read it).
func (n *Node) Store() *kvstore.Store { return n.store }

// Gossip exposes the epoch gossiper.
func (n *Node) Gossip() *gossip.Gossiper { return n.gsp }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Table returns the node's current routing table.
func (n *Node) Table() *ring.Table {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.table
}

// adoptTable installs a newer routing table (no-op for stale versions).
func (n *Node) adoptTable(t *ring.Table) {
	n.mu.Lock()
	if t.Version() > n.table.Version() {
		n.table = t
		n.gsp.SetPeers(t.Members())
	}
	n.mu.Unlock()
}

// OnPeerDown registers a callback for peer failure notifications from
// either the transport (connection drop) or the pinger (hung machine).
func (n *Node) OnPeerDown(fn func(ring.NodeID)) {
	n.downMu.Lock()
	n.downSubs = append(n.downSubs, fn)
	n.downMu.Unlock()
}

func (n *Node) notifyDown(id ring.NodeID) {
	n.downMu.Lock()
	subs := append([]func(ring.NodeID){}, n.downSubs...)
	n.downMu.Unlock()
	for _, fn := range subs {
		fn(id)
	}
}

// StartPinger begins background hung-machine detection against all current
// table members (§V-C).
func (n *Node) StartPinger(interval, timeout time.Duration) {
	if n.pinger != nil {
		n.pinger.Stop()
	}
	n.pinger = transport.NewPinger(n.ep, interval, timeout, n.notifyDown)
	for _, m := range n.Table().Members() {
		n.pinger.Watch(m)
	}
	n.pinger.Start()
}

// Close stops background activity. The local store remains usable.
func (n *Node) Close() {
	if n.pinger != nil {
		n.pinger.Stop()
	}
	n.StopRepair()
	n.stopRetry()
	n.gsp.Stop()
	_ = n.ep.Close()
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%s)", n.id)
}
