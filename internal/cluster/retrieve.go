package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"orchestra/internal/ring"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// KeyPred is a sargable predicate over the order-preserving key encoding:
// it selects tuple IDs with Lo <= key < Hi (nil bounds are open). It is the
// filter f(k̄) of Algorithm 1, shipped to index nodes.
type KeyPred struct {
	Lo, Hi []byte
}

// Match reports whether an encoded key satisfies the predicate.
func (p KeyPred) Match(key string) bool {
	if p.Lo != nil && bytes.Compare([]byte(key), p.Lo) < 0 {
		return false
	}
	if p.Hi != nil && bytes.Compare([]byte(key), p.Hi) >= 0 {
		return false
	}
	return true
}

// EqPred selects exactly the tuples whose full key equals the given values.
func EqPred(s *tuple.Schema, keyVals ...tuple.Value) KeyPred {
	var enc []byte
	for _, v := range keyVals {
		enc = tuple.AppendKeyValue(enc, v)
	}
	hi := append(append([]byte(nil), enc...), 0)
	return KeyPred{Lo: enc, Hi: hi}
}

// AllPred selects every tuple.
func AllPred() KeyPred { return KeyPred{} }

// scanCollector accumulates the out-of-band tuple shipments for one
// Retrieve call.
type scanCollector struct {
	mu       sync.Mutex
	rows     [][]byte // encoded tuple records
	received int
	expected int // -1 until all ScanPage replies arrive
	done     chan struct{}
	closed   bool
}

func (c *scanCollector) add(values [][]byte) {
	c.mu.Lock()
	c.rows = append(c.rows, values...)
	c.received++
	c.check()
	c.mu.Unlock()
}

func (c *scanCollector) setExpected(n int) {
	c.mu.Lock()
	c.expected = n
	c.check()
	c.mu.Unlock()
}

func (c *scanCollector) check() {
	if !c.closed && c.expected >= 0 && c.received >= c.expected {
		c.closed = true
		close(c.done)
	}
}

// --- wire formats ---

type scanPageReq struct {
	ScanID    uint64
	Requester ring.NodeID
	PageKey   []byte
	Pred      KeyPred
}

func encodeScanPageReq(r scanPageReq) []byte {
	out := binary.BigEndian.AppendUint64(nil, r.ScanID)
	out = appendBytes(out, []byte(r.Requester))
	out = appendBytes(out, r.PageKey)
	out = appendBytes(out, r.Pred.Lo)
	out = appendBytes(out, r.Pred.Hi)
	return out
}

func decodeScanPageReq(data []byte) (scanPageReq, error) {
	var r scanPageReq
	if len(data) < 8 {
		return r, errors.New("cluster: short scan request")
	}
	r.ScanID = binary.BigEndian.Uint64(data)
	rest := data[8:]
	req, rest, err := readBytes(rest)
	if err != nil {
		return r, err
	}
	r.Requester = ring.NodeID(req)
	r.PageKey, rest, err = readBytes(rest)
	if err != nil {
		return r, err
	}
	lo, rest, err := readBytes(rest)
	if err != nil {
		return r, err
	}
	hi, _, err := readBytes(rest)
	if err != nil {
		return r, err
	}
	if len(lo) > 0 {
		r.Pred.Lo = lo
	}
	if len(hi) > 0 {
		r.Pred.Hi = hi
	}
	return r, nil
}

func encodeFetchFwd(scanID uint64, requester ring.NodeID, ids []tuple.ID) []byte {
	out := binary.BigEndian.AppendUint64(nil, scanID)
	out = appendBytes(out, []byte(requester))
	out = binary.AppendUvarint(out, uint64(len(ids)))
	for _, id := range ids {
		out = binary.BigEndian.AppendUint64(out, uint64(id.Epoch))
		out = appendBytes(out, []byte(id.Key))
	}
	return out
}

func decodeFetchFwd(data []byte) (scanID uint64, requester ring.NodeID, ids []tuple.ID, err error) {
	if len(data) < 8 {
		return 0, "", nil, errors.New("cluster: short fetch forward")
	}
	scanID = binary.BigEndian.Uint64(data)
	rest := data[8:]
	req, rest, err := readBytes(rest)
	if err != nil {
		return 0, "", nil, err
	}
	requester = ring.NodeID(req)
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > 1<<26 {
		return 0, "", nil, errors.New("cluster: bad fetch count")
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		if len(rest) < 8 {
			return 0, "", nil, errors.New("cluster: truncated fetch id")
		}
		e := tuple.Epoch(binary.BigEndian.Uint64(rest))
		rest = rest[8:]
		var k []byte
		k, rest, err = readBytes(rest)
		if err != nil {
			return 0, "", nil, err
		}
		ids = append(ids, tuple.ID{Key: string(k), Epoch: e})
	}
	return scanID, requester, ids, nil
}

func encodeScanResult(scanID uint64, values [][]byte) []byte {
	out := binary.BigEndian.AppendUint64(nil, scanID)
	out = binary.AppendUvarint(out, uint64(len(values)))
	for _, v := range values {
		out = appendBytes(out, v)
	}
	return out
}

func decodeScanResult(data []byte) (scanID uint64, values [][]byte, err error) {
	if len(data) < 8 {
		return 0, nil, errors.New("cluster: short scan result")
	}
	scanID = binary.BigEndian.Uint64(data)
	rest := data[8:]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > 1<<26 {
		return 0, nil, errors.New("cluster: bad result count")
	}
	rest = rest[n:]
	for i := uint64(0); i < count; i++ {
		var v []byte
		v, rest, err = readBytes(rest)
		if err != nil {
			return 0, nil, err
		}
		values = append(values, v)
	}
	return scanID, values, nil
}

// registerScanHandlers installs the Algorithm 1 machinery.
func (n *Node) registerScanHandlers() {
	// Index-node side: scan one page, filter, and fan requests out to the
	// data storage nodes, which ship tuples directly to the requester
	// "bypassing the Index node and Relation Coordinator" (Algorithm 1).
	n.ep.Handle(msgScanPage, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return n.scanPageImpl(payload)
	})

	// Data-node side: look up the requested tuple versions and ship them to
	// the requester. Runs off the delivery loop because missing tuples may
	// require replica-fallback RPCs (§IV: never return stale data — fetch
	// the exact version from the network instead).
	n.ep.Handle(msgFetchFwd, func(from ring.NodeID, payload []byte) ([]byte, error) {
		buf := append([]byte(nil), payload...)
		go n.serveFetch(buf)
		return nil, nil
	})

	// Requester side: collect shipped tuples.
	n.ep.Handle(msgScanResult, func(from ring.NodeID, payload []byte) ([]byte, error) {
		scanID, values, err := decodeScanResult(payload)
		if err != nil {
			return nil, err
		}
		n.scanMu.Lock()
		col := n.scans[scanID]
		n.scanMu.Unlock()
		if col != nil {
			col.add(values)
		}
		return nil, nil
	})
}

// serveFetch is the data-storage-node half of Algorithm 1.
func (n *Node) serveFetch(payload []byte) {
	scanID, requester, ids, err := decodeFetchFwd(payload)
	if err != nil {
		return
	}
	values := make([][]byte, 0, len(ids))
	for _, id := range ids {
		kvKey := vstore.TupleKVKey(id)
		if v, ok := n.store.Get(kvKey); ok {
			values = append(values, v)
			continue
		}
		// Exact version missing locally (e.g. membership churn): fetch it
		// from other replicas rather than ever serving stale data.
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RequestTimeout)
		v, err := n.GetRecord(ctx, id.Hash(), kvKey)
		cancel()
		if err == nil {
			values = append(values, v)
		}
	}
	if requester == n.id {
		n.scanMu.Lock()
		col := n.scans[scanID]
		n.scanMu.Unlock()
		if col != nil {
			col.add(values)
		}
		return
	}
	_ = n.ep.Send(requester, msgScanResult, encodeScanResult(scanID, values))
}

func (n *Node) registerHandlers() {
	n.registerRecordHandlers()
	n.registerScanHandlers()
	n.registerLeaseHandler()
	n.registerRepairHandlers()
}

// Retrieve implements Algorithm 1: fetch the tuples of relation as of
// global epoch e that satisfy pred. The result is a consistent, complete
// snapshot — exactly the tuple versions current at the effective epoch.
func (n *Node) Retrieve(ctx context.Context, relation string, e tuple.Epoch, pred KeyPred) ([]tuple.Row, error) {
	eff, cat, ok, err := n.ResolveEpoch(ctx, relation, e)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil // relation existed but had no data at e
	}
	coord, err := n.GetCoordinator(ctx, relation, eff)
	if err != nil {
		return nil, err
	}

	col := &scanCollector{expected: -1, done: make(chan struct{})}
	n.scanMu.Lock()
	n.nextScan++
	scanID := n.nextScan
	n.scans[scanID] = col
	n.scanMu.Unlock()
	defer func() {
		n.scanMu.Lock()
		delete(n.scans, scanID)
		n.scanMu.Unlock()
	}()

	table := n.Table()
	totalDataNodes := 0
	for _, ref := range coord.Pages {
		req := encodeScanPageReq(scanPageReq{
			ScanID:    scanID,
			Requester: n.id,
			PageKey:   vstore.PageKVKey(ref.ID),
			Pred:      pred,
		})
		dataNodes, err := n.scanOnePage(ctx, table, ref, req)
		if err != nil {
			return nil, fmt.Errorf("cluster: scan page %s: %w", ref.ID, err)
		}
		totalDataNodes += dataNodes
	}
	col.setExpected(totalDataNodes)

	select {
	case <-col.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	col.mu.Lock()
	raw := col.rows
	col.mu.Unlock()
	rows := make([]tuple.Row, 0, len(raw))
	for _, v := range raw {
		rec, err := vstore.DecodeTupleRecord(cat.Schema, v)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rec.Row)
	}
	return rows, nil
}

// scanOnePage sends the ScanPage RPC to the page's index node, falling back
// across the placement's replicas. It returns the number of data-node
// shipments to expect.
func (n *Node) scanOnePage(ctx context.Context, table *ring.Table, ref vstore.PageRef, req []byte) (int, error) {
	var lastErr error
	for _, rep := range table.Replicas(ref.Placement()) {
		var resp []byte
		var err error
		if rep == n.id {
			resp, err = n.scanPageImpl(req)
		} else {
			rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
			resp, err = n.ep.Request(rctx, rep, msgScanPage, req)
			cancel()
		}
		if err != nil {
			lastErr = err
			continue
		}
		if len(resp) != 8 {
			lastErr = errors.New("cluster: malformed scan reply")
			continue
		}
		return int(binary.BigEndian.Uint32(resp[:4])), nil
	}
	return 0, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

// scanPageImpl is the index-node half of Algorithm 1, shared by the RPC
// handler and the local fast path.
func (n *Node) scanPageImpl(payload []byte) ([]byte, error) {
	r, err := decodeScanPageReq(payload)
	if err != nil {
		return nil, err
	}
	pageData, ok := n.store.Get(r.PageKey)
	if !ok {
		// The requester will retry at another replica of this page.
		return nil, fmt.Errorf("%w: page %q", ErrNotFound, r.PageKey)
	}
	page, err := vstore.DecodePage(pageData)
	if err != nil {
		return nil, err
	}
	table := n.Table()
	byOwner := make(map[ring.NodeID][]tuple.ID)
	matched := 0
	page.EnsureHashes() // route by the page's cached placement hashes
	for i, id := range page.IDs {
		if !r.Pred.Match(id.Key) {
			continue
		}
		matched++
		owner := table.Owner(page.Hashes[i])
		byOwner[owner] = append(byOwner[owner], id)
	}
	for owner, ids := range byOwner {
		fwd := encodeFetchFwd(r.ScanID, r.Requester, ids)
		if owner == n.id {
			// Colocated: serve directly without a network hop.
			go n.serveFetch(fwd)
			continue
		}
		// The owner's replicas hold copies of its range; if the owner is
		// unreachable, forward to the next live replica (§IV: retrieve the
		// missing state from other nearby nodes).
		delivered := false
		for _, cand := range table.Replicas(ids[0].Hash()) {
			if cand == n.id {
				go n.serveFetch(append([]byte(nil), fwd...))
				delivered = true
				break
			}
			if err := n.ep.Send(cand, msgFetchFwd, fwd); err == nil {
				delivered = true
				break
			}
		}
		if !delivered {
			// Every replica unreachable: report zero tuples so the scan
			// terminates; the caller observes missing data via counts.
			_ = n.ep.Send(r.Requester, msgScanResult, encodeScanResult(r.ScanID, nil))
		}
	}
	var reply [8]byte
	binary.BigEndian.PutUint32(reply[:4], uint32(len(byOwner)))
	binary.BigEndian.PutUint32(reply[4:], uint32(matched))
	return reply[:], nil
}

// RetrieveTimeout is a convenience wrapper with a default deadline.
func (n *Node) RetrieveTimeout(relation string, e tuple.Epoch, pred KeyPred, d time.Duration) ([]tuple.Row, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return n.Retrieve(ctx, relation, e, pred)
}
