package cluster

import (
	"testing"
	"time"

	"orchestra/internal/ring"
)

func fastRetries(t *testing.T, attempts int) {
	t.Helper()
	oldBase, oldMax, oldAttempts := retryBaseDelay, retryMaxDelay, maxRetryAttempts
	retryBaseDelay, retryMaxDelay, maxRetryAttempts = 5*time.Millisecond, 50*time.Millisecond, attempts
	t.Cleanup(func() {
		retryBaseDelay, retryMaxDelay, maxRetryAttempts = oldBase, oldMax, oldAttempts
	})
}

// rebalanceWithDeadDests drives a rebalance whose pushes target dead
// members: node 3 leaves the table while the listed nodes are down, so
// the surviving pushers cannot deliver part of their share. The failed
// batches must land in the pushers' retry queues instead of being
// silently kept for a rebalance nothing schedules. Returns the live
// pushers that queued failed batches.
func rebalanceWithDeadDests(t *testing.T, dead ...int) (*Local, []*Node) {
	t.Helper()
	l := testCluster(t, 4)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 120)

	oldTable := l.Table()
	members := oldTable.Members()
	keep := make([]ring.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != NodeName(3) {
			keep = append(keep, m)
		}
	}
	newTable, err := oldTable.WithMembers(keep)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Node(0).BroadcastTable(ctx, newTable); err != nil {
		t.Fatal(err)
	}
	for _, d := range dead {
		l.Kill(NodeName(d))
	}

	isDead := func(i int) bool {
		for _, d := range dead {
			if d == i {
				return true
			}
		}
		return false
	}
	failures := 0
	var pushers []*Node
	for i := 0; i < 3; i++ { // surviving members of the new table
		if isDead(i) {
			continue
		}
		node := l.Node(i)
		if err := node.Rebalance(ctx, oldTable, newTable); err != nil {
			failures++
		}
		if queued, _, _ := node.RetryQueueStats(); queued > 0 {
			pushers = append(pushers, node)
		}
	}
	if failures == 0 {
		t.Fatal("rebalance with dead destinations must report the failure")
	}
	if len(pushers) == 0 {
		t.Fatal("failed pushes were not queued for retry")
	}
	return l, pushers
}

func TestRebalanceRetryLandsAfterRecovery(t *testing.T) {
	fastRetries(t, 1000)
	l, pushers := rebalanceWithDeadDests(t, 2)
	ctx := ctxT(t)

	// The dead destination comes back; the retry queues must drain
	// (PutRecords re-routes under the current table) without another
	// rebalance, and the restarted node must converge.
	restarted, err := l.Restart(ctx, NodeName(2))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		queued, retried, stranded := 0, uint64(0), uint64(0)
		for _, p := range pushers {
			q, r, s := p.RetryQueueStats()
			queued += q
			retried += r
			stranded += s
		}
		if queued == 0 && retried > 0 && stranded == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry queues never drained: queued=%d retried=%d stranded=%d", queued, retried, stranded)
		}
		time.Sleep(5 * time.Millisecond)
	}
	assertConverged(t, l, restarted)
}

func TestRebalanceRetryStrandsAfterCap(t *testing.T) {
	fastRetries(t, 3)
	// Both remote replicas of every record are dead and stay dead: every
	// retry attempt fails outright, so after the attempt cap the records
	// are counted as stranded rather than retried forever (anti-entropy
	// owns them once replicas return — the records are still in the
	// pusher's store).
	_, pushers := rebalanceWithDeadDests(t, 1, 2)

	deadline := time.Now().Add(15 * time.Second)
	for {
		queued, stranded := 0, uint64(0)
		for _, p := range pushers {
			q, _, s := p.RetryQueueStats()
			queued += q
			stranded += s
		}
		if queued == 0 && stranded > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("records never stranded: queued=%d stranded=%d", queued, stranded)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
