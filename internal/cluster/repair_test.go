package cluster

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/vstore"
)

// durableCluster builds an n-node cluster whose stores persist under a
// shared temp dir, so a killed node's replacement recovers its WAL.
func durableCluster(t *testing.T, n int, retain int64) *Local {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{Replication: 3, MaxPageEntries: 32,
		OpenStore: func(id ring.NodeID) (*kvstore.Store, error) {
			d := filepath.Join(dir, string(id))
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, err
			}
			return kvstore.Open(d, kvstore.Options{Sync: kvstore.SyncNever, RetainBytes: retain})
		}}
	l, err := NewLocal(n, cfg, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Shutdown)
	return l
}

// initMarkers runs one repair round on the node so later catch-ups pull
// exactly the delta (first contact initializes per-peer markers).
func initMarkers(t *testing.T, l *Local, node *Node) {
	t.Helper()
	if err := node.Repair(ctxT(t)); err != nil {
		t.Fatalf("initial repair round: %v", err)
	}
}

func publishRows(t *testing.T, l *Local, via, start, count int) {
	t.Helper()
	var ups []vstore.Update
	for i := start; i < start+count; i++ {
		ups = append(ups, insertRow(fmt.Sprintf("key%05d", i), fmt.Sprintf("val%05d", i)))
	}
	if _, err := l.Node(via).Publish(ctxT(t), "R", ups); err != nil {
		t.Fatalf("publish: %v", err)
	}
}

// assertConverged checks the node holds exactly what a fresh rebalance
// would give it: every record any live peer stores whose placement the
// node replicates, byte-for-byte — and nothing foreign.
func assertConverged(t *testing.T, l *Local, node *Node) {
	t.Helper()
	table := node.Table()
	id := node.ID()
	missing, mismatched, foreign := 0, 0, 0
	for _, peer := range l.Nodes() {
		if peer.ID() == id || !l.Net.Alive(peer.ID()) {
			continue
		}
		peer.Store().Scan(nil, nil, func(k, v []byte) bool {
			placement, ok := placementOf(k, v)
			if !ok || !table.IsReplica(id, placement) {
				return true
			}
			got, ok := node.Store().Get(k)
			switch {
			case !ok:
				missing++
			case !bytes.Equal(got, v):
				mismatched++
			}
			return true
		})
	}
	node.Store().Scan(nil, nil, func(k, v []byte) bool {
		placement, ok := placementOf(k, v)
		if ok && !table.IsReplica(id, placement) {
			foreign++
		}
		return true
	})
	if missing+mismatched+foreign > 0 {
		t.Fatalf("%s diverged from rebalance-equivalent state: %d missing, %d mismatched, %d foreign records",
			id, missing, mismatched, foreign)
	}
}

func TestRestartCatchesUpViaWalShip(t *testing.T) {
	l := durableCluster(t, 5, 0)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 100)
	victim := NodeName(4)
	initMarkers(t, l, l.ByID(victim))

	l.Kill(victim)
	publishRows(t, l, 0, 100, 100)
	epoch := l.Node(0).Gossip().Current()

	node, err := l.Restart(ctx, victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	st := node.ReplStats()
	if st.StateTransfers != 0 {
		t.Errorf("catch-up used %d state transfers; the WAL delta should have sufficed", st.StateTransfers)
	}
	if st.CatchUpRecords == 0 {
		t.Error("no records replayed through WAL catch-up")
	}
	if got := node.Store().Epoch(); got < uint64(epoch) {
		t.Errorf("restarted node at epoch %d, cluster at %d", got, epoch)
	}
	assertConverged(t, l, node)

	// The rejoined node serves correct answers.
	rows, err := node.Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("retrieved %d rows from rejoined node, want 200", len(rows))
	}
}

func TestRestartAfterDiskLossStateTransfer(t *testing.T) {
	// Memory stores: a restart comes back empty, the analogue of losing
	// the data directory. Catch-up must detect there is no usable local
	// position and rebuild via state transfer.
	l := testCluster(t, 5)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 150)
	epoch := l.Node(0).Gossip().Current()
	victim := NodeName(2)

	l.Kill(victim)
	node, err := l.Restart(ctx, victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if st := node.ReplStats(); st.StateTransfers == 0 {
		t.Error("empty replacement store must trigger a state transfer")
	}
	assertConverged(t, l, node)
	rows, err := node.Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 150 {
		t.Fatalf("retrieved %d rows, want 150", len(rows))
	}
}

func TestRestartTruncatedHistoryFallsBackToStateTransfer(t *testing.T) {
	// A tiny retention budget evicts peers' shipping history while the
	// victim is down: walship reports truncation and the rejoiner falls
	// back to the state transfer instead of failing or serving holes.
	l := durableCluster(t, 4, 1)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 50)
	victim := NodeName(3)
	initMarkers(t, l, l.ByID(victim))

	l.Kill(victim)
	publishRows(t, l, 0, 50, 100)
	epoch := l.Node(0).Gossip().Current()

	node, err := l.Restart(ctx, victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if st := node.ReplStats(); st.StateTransfers == 0 {
		t.Error("evicted history must force a state transfer")
	}
	assertConverged(t, l, node)
	rows, err := node.Retrieve(ctx, "R", epoch, AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 150 {
		t.Fatalf("retrieved %d rows, want 150", len(rows))
	}
}

func TestMultiBatchCatchUpStreams(t *testing.T) {
	old := shipBatchBytes
	shipBatchBytes = 2048
	t.Cleanup(func() { shipBatchBytes = old })

	l := durableCluster(t, 4, 0)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 20)
	victim := NodeName(3)
	initMarkers(t, l, l.ByID(victim))

	l.Kill(victim)
	publishRows(t, l, 0, 20, 300)

	node, err := l.Restart(ctx, victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	st := node.ReplStats()
	if st.CatchUpBatches < 2 {
		t.Errorf("a 2 KiB budget over 300 rows must stream multiple batches, got %d", st.CatchUpBatches)
	}
	if st.StateTransfers != 0 {
		t.Errorf("streamed catch-up needed %d state transfers", st.StateTransfers)
	}
	assertConverged(t, l, node)
}

func TestCatchUpPeerDeathFailsCleanly(t *testing.T) {
	l := durableCluster(t, 5, 0)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 50)
	node := l.Node(0)
	initMarkers(t, l, node)

	dead := NodeName(4)
	l.Kill(dead)
	seqBefore := node.Store().Seq()
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := node.CatchUp(cctx, dead); err == nil {
		t.Fatal("catch-up from a dead peer must fail")
	}
	if node.Store().Seq() != seqBefore {
		t.Error("failed catch-up mutated the store")
	}
	// Repair against the remaining peers still converges (the round
	// reports the dead peer's error but repairs via the others).
	if err := node.Repair(ctx); err == nil {
		t.Error("repair round must surface the dead peer")
	}
	assertConverged(t, l, node)
}

func TestAntiEntropyRepairsDivergence(t *testing.T) {
	l := durableCluster(t, 4, 0)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 80)
	node := l.Node(1)
	initMarkers(t, l, node)

	// Silently corrupt one replicated record on this node (bit rot, a
	// lost write — anything the write path would never produce).
	var key, val []byte
	node.Store().Scan(nil, nil, func(k, v []byte) bool {
		if _, ok := placementOf(k, v); !ok {
			return true
		}
		if k[0] == 't' {
			key = append([]byte(nil), k...)
			val = append([]byte(nil), v...)
			return false
		}
		return true
	})
	if key == nil {
		t.Fatal("no tuple record found on node")
	}
	if err := node.Store().Put(key, append([]byte("CORRUPT"), val...)); err != nil {
		t.Fatal(err)
	}

	// Repair against a peer that shares the record.
	placement, _ := placementOf(key, val)
	var peer ring.NodeID
	for _, r := range node.Table().Replicas(placement) {
		if r != node.ID() {
			peer = r
			break
		}
	}
	repaired, err := node.RepairPeer(ctx, peer)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !repaired {
		t.Fatal("digest comparison missed the divergence")
	}
	got, ok := node.Store().Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("corrupted record not restored: %q", got)
	}
	if st := node.ReplStats(); st.AntiEntropyRepairs == 0 {
		t.Error("repair not counted")
	}
}

func TestBackgroundRepairLoopHeals(t *testing.T) {
	l := durableCluster(t, 3, 0)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 40)
	node := l.Node(2)
	initMarkers(t, l, node)

	var key, val []byte
	node.Store().Scan(nil, nil, func(k, v []byte) bool {
		if _, ok := placementOf(k, v); ok && k[0] == 't' {
			key = append([]byte(nil), k...)
			val = append([]byte(nil), v...)
			return false
		}
		return true
	})
	if key == nil {
		t.Fatal("no tuple record found")
	}
	if err := node.Store().Put(key, []byte("ROT")); err != nil {
		t.Fatal(err)
	}

	node.StartRepair(20 * time.Millisecond)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if got, ok := node.Store().Get(key); ok && bytes.Equal(got, val) {
			if st := node.ReplStats(); st.AntiEntropyRounds == 0 {
				t.Error("rounds not counted")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("background anti-entropy never repaired the divergence")
}

func TestReplStatsReportsLag(t *testing.T) {
	l := durableCluster(t, 3, 0)
	ctx := ctxT(t)
	if err := l.Node(0).CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	publishRows(t, l, 0, 0, 30)
	node := l.Node(1)
	initMarkers(t, l, node)

	// More publishes raise the peers' shipping positions; gossip carries
	// them, so lag becomes visible without any repair traffic.
	publishRows(t, l, 0, 30, 50)
	deadline := time.Now().Add(10 * time.Second)
	for node.ReplStats().MaxLag == 0 && time.Now().Before(deadline) {
		l.Node(0).Gossip().Sync(ctx, node.Table().Members())
		node.Gossip().Sync(ctx, node.Table().Members())
		time.Sleep(5 * time.Millisecond)
	}
	if st := node.ReplStats(); st.MaxLag == 0 {
		t.Fatal("lag never became visible through gossip")
	}
	// Catch-up drives it back toward zero.
	if err := node.Repair(ctx); err != nil {
		t.Fatal(err)
	}
	stAfter := node.ReplStats()
	if stAfter.MaxLag > 0 {
		// Gossiped seqs may be slightly stale; the marker must at least
		// have advanced past the pre-repair view.
		t.Logf("residual lag after repair: %d", stAfter.MaxLag)
	}
	assertConverged(t, l, node)
}
