package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// GetCatalog fetches a relation's catalog.
func (n *Node) GetCatalog(ctx context.Context, relation string) (*vstore.Catalog, error) {
	data, err := n.GetRecord(ctx, vstore.CatalogPlacement(relation), vstore.CatalogKVKey(relation))
	if errors.Is(err, ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchRelation, relation)
	}
	if err != nil {
		return nil, err
	}
	return vstore.DecodeCatalog(data)
}

// GetCoordinator fetches the relation coordinator record for an exact
// modification epoch (callers resolve the effective epoch via the catalog).
func (n *Node) GetCoordinator(ctx context.Context, relation string, e tuple.Epoch) (*vstore.Coordinator, error) {
	data, err := n.GetRecord(ctx, vstore.CoordPlacement(relation, e), vstore.CoordKVKey(relation, e))
	if err != nil {
		return nil, err
	}
	return vstore.DecodeCoordinator(data)
}

// CreateRelation registers a new relation's schema in the CDSS. The relation
// becomes visible to publishes and queries immediately; it has no tuples
// until the first publish.
func (n *Node) CreateRelation(ctx context.Context, schema *tuple.Schema) error {
	if _, err := n.GetCatalog(ctx, schema.Relation); err == nil {
		return fmt.Errorf("%w: %s", ErrRelationExists, schema.Relation)
	} else if !errors.Is(err, ErrNoSuchRelation) {
		return err
	}
	cat := &vstore.Catalog{Schema: schema}
	return n.PutRecord(ctx, vstore.CatalogPlacement(schema.Relation),
		vstore.CatalogKVKey(schema.Relation), vstore.EncodeCatalog(cat))
}

// Publish applies a participant's update log to the versioned store as one
// batch at a fresh epoch (§IV): affected index pages are rewritten
// copy-on-write, new tuple versions are bulk-loaded to their data nodes, a
// new coordinator record links changed and unchanged pages, and the catalog
// gains the new epoch. It returns the publish epoch.
//
// Write ordering guarantees snapshot consistency for readers: tuples before
// pages, pages before the coordinator, the coordinator before the catalog —
// so a reader that can see epoch e in the catalog can reach all of e's data.
//
// Publishes to the same relation are serialized: within this process by
// the per-relation mutex, and across processes by a short-lived lease on
// the relation acquired from the catalog's primary replica (lease.go) —
// the whole sequence is a distributed read-modify-write of the relation's
// catalog, and two concurrent publishes building on the same base epoch
// would each link only their own pages, so the last catalog write would
// win and silently drop the other's tuples.
func (n *Node) Publish(ctx context.Context, relation string, ups []vstore.Update) (tuple.Epoch, error) {
	return n.PublishWith(ctx, relation, ups, PublishOptions{})
}

// PublishOptions tunes one publish.
type PublishOptions struct {
	// ID is a caller-chosen idempotency token. When non-zero, a publish
	// whose ID matches a recently applied one (Catalog.RecentPubs) is not
	// re-applied: the previously committed epoch is returned instead. This
	// is what makes a publish safe to retry after a lost acknowledgement.
	ID uint64
}

// PublishWith is Publish with per-call options.
func (n *Node) PublishWith(ctx context.Context, relation string, ups []vstore.Update, opts PublishOptions) (tuple.Epoch, error) {
	mu := n.relationLock(relation)
	mu.Lock()
	defer mu.Unlock()
	releaseLease, err := n.acquireRelLease(ctx, relation)
	if err != nil {
		return 0, fmt.Errorf("cluster: publish %s: %w", relation, err)
	}
	defer releaseLease()
	cat, err := n.GetCatalog(ctx, relation)
	if err != nil {
		return 0, err
	}
	if e, ok := cat.FindPub(opts.ID); ok {
		return e, nil // duplicate of an already-applied publish
	}
	epoch := n.gsp.Next()

	var pages []vstore.Page
	var writes []vstore.TupleWrite
	var carried []vstore.PageRef // unchanged pages linked into the new version

	if latest, ok := cat.LatestEpoch(); !ok {
		pages, writes, err = vstore.BuildInitialPages(cat.Schema, epoch, ups, n.cfg.MaxPageEntries)
		if err != nil {
			return 0, err
		}
	} else {
		coord, err := n.GetCoordinator(ctx, relation, latest)
		if err != nil {
			return 0, fmt.Errorf("cluster: fetch coordinator %s@%d: %w", relation, latest, err)
		}
		groups, err := vstore.GroupByPage(coord, cat.Schema, ups)
		if err != nil {
			return 0, err
		}
		var seq uint32
		for _, ref := range coord.Pages {
			g, touched := groups[ref.ID]
			if !touched {
				carried = append(carried, ref)
				continue
			}
			oldPage, err := n.fetchPage(ctx, ref)
			if err != nil {
				return 0, fmt.Errorf("cluster: fetch page %s: %w", ref.ID, err)
			}
			newPages, w, err := vstore.ApplyToPage(oldPage, cat.Schema, epoch, g, n.cfg.MaxPageEntries, &seq)
			if err != nil {
				return 0, err
			}
			pages = append(pages, newPages...)
			writes = append(writes, w...)
		}
	}

	// 1. Tuple versions, bulk, batched by destination.
	tuplePuts := make([]RecordPut, 0, len(writes))
	for _, w := range writes {
		val, err := vstore.EncodeTupleRecord(cat.Schema, vstore.TupleRecord{ID: w.ID, Row: w.Row})
		if err != nil {
			return 0, err
		}
		tuplePuts = append(tuplePuts, RecordPut{
			Placement: w.ID.Hash(),
			KVKey:     vstore.TupleKVKey(w.ID),
			Value:     val,
		})
	}
	if err := n.PutRecords(ctx, tuplePuts); err != nil {
		return 0, fmt.Errorf("cluster: publish tuples: %w", err)
	}

	// 2. Index pages at their range midpoints.
	pagePuts := make([]RecordPut, 0, len(pages))
	newRefs := make([]vstore.PageRef, 0, len(pages)+len(carried))
	for i := range pages {
		p := &pages[i]
		pagePuts = append(pagePuts, RecordPut{
			Placement: p.Ref.Placement(),
			KVKey:     vstore.PageKVKey(p.Ref.ID),
			Value:     vstore.EncodePage(p),
		})
		newRefs = append(newRefs, p.Ref)
	}
	if err := n.PutRecords(ctx, pagePuts); err != nil {
		return 0, fmt.Errorf("cluster: publish pages: %w", err)
	}
	newRefs = append(newRefs, carried...)

	// 3. Coordinator record for (relation, epoch).
	coord := &vstore.Coordinator{Relation: relation, Epoch: epoch, Pages: newRefs}
	if err := n.PutRecord(ctx, vstore.CoordPlacement(relation, epoch),
		vstore.CoordKVKey(relation, epoch), vstore.EncodeCoordinator(coord)); err != nil {
		return 0, fmt.Errorf("cluster: publish coordinator: %w", err)
	}

	// 4. Catalog update makes the epoch visible — and, atomically with
	// it, the publish mark (idempotent-retry dedup) and the refreshed
	// row-count statistic.
	cat2 := cat.WithEpoch(epoch)
	for _, u := range ups {
		switch u.Op {
		case vstore.OpInsert:
			cat2.Rows++
		case vstore.OpDelete:
			if cat2.Rows > 0 {
				cat2.Rows--
			}
		}
	}
	cat2.MarkPub(opts.ID, epoch)
	if err := n.PutRecord(ctx, vstore.CatalogPlacement(relation),
		vstore.CatalogKVKey(relation), vstore.EncodeCatalog(cat2)); err != nil {
		return 0, fmt.Errorf("cluster: publish catalog: %w", err)
	}
	n.gsp.Advance(epoch)
	// The epoch advance is part of the publish's acknowledgement: on a
	// durable store it must survive a crash, or a restarted node would
	// gossip an old epoch while the catalog already names this one. The
	// gossip OnAdvance hook persisted it best-effort; this is the
	// error-checked barrier (idempotent if the hook already succeeded).
	if err := n.store.SetEpoch(uint64(epoch)); err != nil {
		return 0, fmt.Errorf("cluster: persist publish epoch %d: %w", epoch, err)
	}
	return epoch, nil
}

// relationLock returns the per-relation publish lock.
func (n *Node) relationLock(relation string) *sync.Mutex {
	n.pubMu.Lock()
	defer n.pubMu.Unlock()
	mu, ok := n.pubRels[relation]
	if !ok {
		mu = new(sync.Mutex)
		n.pubRels[relation] = mu
	}
	return mu
}

// fetchPage loads an index page from its replicas.
func (n *Node) fetchPage(ctx context.Context, ref vstore.PageRef) (*vstore.Page, error) {
	data, err := n.GetRecord(ctx, ref.Placement(), vstore.PageKVKey(ref.ID))
	if err != nil {
		return nil, err
	}
	return vstore.DecodePage(data)
}

// ResolveEpoch maps "relation R as of global epoch e" to the exact
// modification epoch whose coordinator should be read. ok is false when the
// relation had no published state at e.
func (n *Node) ResolveEpoch(ctx context.Context, relation string, e tuple.Epoch) (tuple.Epoch, *vstore.Catalog, bool, error) {
	cat, err := n.GetCatalog(ctx, relation)
	if err != nil {
		return 0, nil, false, err
	}
	eff, ok := cat.EffectiveEpoch(e)
	return eff, cat, ok, nil
}
