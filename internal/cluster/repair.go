package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"orchestra/internal/keyspace"
	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

// Replica repair: WAL-shipping catch-up, state-transfer fallback, and
// anti-entropy for rejoining or lagging replicas.
//
// Every store assigns each mutation a global sequence number and retains
// recent records (kvstore's shipping ring + archived WAL segments). A
// replica that was down pulls exactly the delta it missed from a peer's
// log (msgWalShip), filters it to the placements the two nodes share,
// and replays it through the normal commit path — no full rebalance.
// When the peer has truncated past the requested position, the replica
// falls back to a chunked ordered state transfer (msgReplFetch). A
// low-priority background loop additionally exchanges per-relation
// summaries (msgReplDigest) to detect silent divergence and trigger the
// same targeted repair.
//
// Per-peer progress markers live in the local store under a key prefix
// (y/repl/) that placementOf rejects, so they are invisible to
// rebalancing, digests, and shipped-record application — but durable and
// crash-recovered like any other record.

// Repair message types (storage layer, after 0x0108).
const (
	msgReplStatus transport.MsgType = 0x0109 // → seq | firstAvail | epoch
	msgWalShip    transport.MsgType = 0x010A // after | maxBytes → records
	msgReplDigest transport.MsgType = 0x010B // → per-group summaries
	msgReplFetch  transport.MsgType = 0x010C // afterKey | maxBytes → pairs
)

// ReplStats is a snapshot of the repair subsystem's counters plus the
// current replication lag view.
type ReplStats struct {
	CatchUpBatches     uint64            `json:"catch_up_batches"`
	CatchUpRecords     uint64            `json:"catch_up_records"`
	CatchUpSkipped     uint64            `json:"catch_up_skipped"`
	StateTransfers     uint64            `json:"state_transfers"`
	AntiEntropyRounds  uint64            `json:"anti_entropy_rounds"`
	AntiEntropyRepairs uint64            `json:"anti_entropy_repairs"`
	FetchedKeys        uint64            `json:"fetched_keys"`
	MergeDeletes       uint64            `json:"merge_deletes"`
	LastCatchUpUs      int64             `json:"last_catch_up_us"`
	MaxLag             uint64            `json:"max_lag"`
	PeerLags           map[string]uint64 `json:"peer_lags,omitempty"`
}

// repairState holds the Node's repair counters and background loop.
type repairState struct {
	catchUpBatches     atomic.Uint64
	catchUpRecords     atomic.Uint64
	catchUpSkipped     atomic.Uint64
	stateTransfers     atomic.Uint64
	antiEntropyRounds  atomic.Uint64
	antiEntropyRepairs atomic.Uint64
	fetchedKeys        atomic.Uint64
	mergeDeletes       atomic.Uint64
	lastCatchUpUs      atomic.Int64
	stop               chan struct{}
	stopped            atomic.Bool
}

// Batch budgets for one walship response and one state-transfer chunk.
// Variables so tests can force multi-batch streaming with small stores.
var (
	shipBatchBytes  int64 = 1 << 20
	fetchBatchBytes int64 = 1 << 20
)

// repairDigestEvery spaces the divergence digests out to every Nth
// background round per peer. WAL catch-up is incremental — an idle round
// ships nothing — but a digest is a full store scan on both sides, so
// running one every round would grow the loop's cost linearly with the
// stored data. A variable so tests can force digests on every round.
var repairDigestEvery = 8

// replMarkerPrefix is the local-store prefix for per-peer catch-up
// markers. placementOf rejects it, keeping markers node-private.
const replMarkerPrefix = "y/repl/"

// --- wire encodings (uvarint style of records.go) ---

// encodeReplStatus: seq(8) | firstAvail(8) | epoch(8).
func encodeReplStatus(seq, firstAvail, epoch uint64) []byte {
	b := make([]byte, 24)
	binary.BigEndian.PutUint64(b, seq)
	binary.BigEndian.PutUint64(b[8:], firstAvail)
	binary.BigEndian.PutUint64(b[16:], epoch)
	return b
}

func decodeReplStatus(data []byte) (seq, firstAvail, epoch uint64, err error) {
	if len(data) != 24 {
		return 0, 0, 0, errors.New("cluster: malformed repl status")
	}
	return binary.BigEndian.Uint64(data),
		binary.BigEndian.Uint64(data[8:]),
		binary.BigEndian.Uint64(data[16:]), nil
}

// encodeShipReq: after(8) | maxBytes(8).
func encodeShipReq(after uint64, maxBytes int64) []byte {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, after)
	binary.BigEndian.PutUint64(b[8:], uint64(maxBytes))
	return b
}

const (
	shipFlagTruncated = 1 << 0
	shipFlagMore      = 1 << 1
)

// encodeShipResp: flags(1) | firstSeq(8) | count uvarint | (op(1) |
// payload bytes)*.
func encodeShipResp(recs []kvstore.ReplRecord, more, truncated bool) []byte {
	var flags byte
	if truncated {
		flags |= shipFlagTruncated
	}
	if more {
		flags |= shipFlagMore
	}
	var first uint64
	if len(recs) > 0 {
		first = recs[0].Seq
	}
	out := make([]byte, 9, 9+len(recs)*16)
	out[0] = flags
	binary.BigEndian.PutUint64(out[1:], first)
	out = binary.AppendUvarint(out, uint64(len(recs)))
	for _, r := range recs {
		out = append(out, r.Op)
		out = appendBytes(out, r.Payload)
	}
	return out
}

func decodeShipResp(data []byte) (recs []kvstore.ReplRecord, more, truncated bool, err error) {
	if len(data) < 9 {
		return nil, false, false, errors.New("cluster: malformed ship response")
	}
	flags := data[0]
	first := binary.BigEndian.Uint64(data[1:])
	data = data[9:]
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<26 {
		return nil, false, false, errors.New("cluster: malformed ship count")
	}
	data = data[n:]
	recs = make([]kvstore.ReplRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(data) < 1 {
			return nil, false, false, errors.New("cluster: truncated ship record")
		}
		op := data[0]
		payload, rest, err := readBytes(data[1:])
		if err != nil {
			return nil, false, false, err
		}
		data = rest
		recs = append(recs, kvstore.ReplRecord{Seq: first + i, Op: op, Payload: payload})
	}
	return recs, flags&shipFlagMore != 0, flags&shipFlagTruncated != 0, nil
}

// encodeFetchReq: afterKey bytes | maxBytes(8).
func encodeFetchReq(afterKey []byte, maxBytes int64) []byte {
	out := appendBytes(nil, afterKey)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(maxBytes))
	return append(out, b[:]...)
}

func decodeFetchReq(data []byte) (afterKey []byte, maxBytes int64, err error) {
	afterKey, rest, err := readBytes(data)
	if err != nil || len(rest) != 8 {
		return nil, 0, errors.New("cluster: malformed fetch request")
	}
	return afterKey, int64(binary.BigEndian.Uint64(rest)), nil
}

// encodeFetchResp: done(1) | count uvarint | (k bytes | v bytes)*.
func encodeFetchResp(pairs []kvstore.KV, done bool) []byte {
	out := make([]byte, 1, 64)
	if done {
		out[0] = 1
	}
	out = binary.AppendUvarint(out, uint64(len(pairs)))
	for _, kv := range pairs {
		out = appendBytes(out, kv.Key)
		out = appendBytes(out, kv.Val)
	}
	return out
}

func decodeFetchResp(data []byte) (pairs []kvstore.KV, done bool, err error) {
	if len(data) < 1 {
		return nil, false, errors.New("cluster: malformed fetch response")
	}
	done = data[0] == 1
	data = data[1:]
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<26 {
		return nil, false, errors.New("cluster: malformed fetch count")
	}
	data = data[n:]
	pairs = make([]kvstore.KV, 0, count)
	for i := uint64(0); i < count; i++ {
		k, rest, err := readBytes(data)
		if err != nil {
			return nil, false, err
		}
		v, rest, err := readBytes(rest)
		if err != nil {
			return nil, false, err
		}
		data = rest
		pairs = append(pairs, kvstore.KV{Key: k, Val: v})
	}
	return pairs, done, nil
}

// digestGroup buckets a local key for divergence summaries: per-relation
// for catalog/coordinator/page records, and 16 hash-prefix buckets for
// tuple records (whose keys carry no relation name).
func digestGroup(k []byte) (string, bool) {
	if len(k) < 2 {
		return "", false
	}
	switch {
	case k[0] == 'c' && k[1] == '/':
		return "rel:" + string(k[2:]), true
	case k[0] == 'r' && k[1] == '/' && len(k) >= 2+9:
		return "rel:" + string(k[2:len(k)-9]), true
	case k[0] == 'p' && k[1] == '/' && len(k) >= 2+13:
		return "rel:" + string(k[2:len(k)-13]), true
	case k[0] == 't' && k[1] == '/' && len(k) >= 2+keyspace.Size:
		return fmt.Sprintf("t:%x", k[2]>>4), true
	default:
		return "", false
	}
}

// keyEpoch extracts the epoch embedded in a local key (0 when none).
func keyEpoch(k []byte) uint64 {
	if len(k) < 2 {
		return 0
	}
	switch {
	case k[0] == 'r' && k[1] == '/' && len(k) >= 2+9:
		return binary.BigEndian.Uint64(k[len(k)-8:])
	case k[0] == 'p' && k[1] == '/' && len(k) >= 2+13:
		return binary.BigEndian.Uint64(k[len(k)-12 : len(k)-4])
	case k[0] == 't' && k[1] == '/' && len(k) >= 2+keyspace.Size+9:
		return binary.BigEndian.Uint64(k[len(k)-8:])
	default:
		return 0
	}
}

type groupDigest struct {
	name     string
	count    uint64
	xor      uint64 // order-independent XOR of per-record FNV-64a hashes
	maxEpoch uint64
}

// computeDigest summarizes the records this node shares with peer:
// {k : self ∈ Replicas(k) AND peer ∈ Replicas(k)} under the current
// table, grouped by digestGroup.
func (n *Node) computeDigest(peer ring.NodeID) []groupDigest {
	table := n.Table()
	acc := map[string]*groupDigest{}
	n.store.Scan(nil, nil, func(k, v []byte) bool {
		placement, ok := placementOf(k, v)
		if !ok {
			return true
		}
		if !table.IsReplica(n.id, placement) || !table.IsReplica(peer, placement) {
			return true
		}
		g, ok := digestGroup(k)
		if !ok {
			return true
		}
		d := acc[g]
		if d == nil {
			d = &groupDigest{name: g}
			acc[g] = d
		}
		h := fnv.New64a()
		h.Write(k)
		h.Write([]byte{0})
		h.Write(v)
		d.count++
		d.xor ^= h.Sum64()
		if e := keyEpoch(k); e > d.maxEpoch {
			d.maxEpoch = e
		}
		return true
	})
	out := make([]groupDigest, 0, len(acc))
	for _, d := range acc {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// encodeDigest: count uvarint | (name bytes | count uvarint | xor(8) |
// maxEpoch(8))*.
func encodeDigest(groups []groupDigest) []byte {
	out := binary.AppendUvarint(nil, uint64(len(groups)))
	for _, g := range groups {
		out = appendBytes(out, []byte(g.name))
		out = binary.AppendUvarint(out, g.count)
		var b [16]byte
		binary.BigEndian.PutUint64(b[:], g.xor)
		binary.BigEndian.PutUint64(b[8:], g.maxEpoch)
		out = append(out, b[:]...)
	}
	return out
}

func decodeDigest(data []byte) ([]groupDigest, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 || count > 1<<20 {
		return nil, errors.New("cluster: malformed digest")
	}
	data = data[n:]
	out := make([]groupDigest, 0, count)
	for i := uint64(0); i < count; i++ {
		name, rest, err := readBytes(data)
		if err != nil {
			return nil, err
		}
		c, m := binary.Uvarint(rest)
		if m <= 0 || len(rest) < m+16 {
			return nil, errors.New("cluster: malformed digest group")
		}
		out = append(out, groupDigest{
			name:     string(name),
			count:    c,
			xor:      binary.BigEndian.Uint64(rest[m:]),
			maxEpoch: binary.BigEndian.Uint64(rest[m+8:]),
		})
		data = rest[m+16:]
	}
	return out, nil
}

func digestsEqual(a, b []groupDigest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// digestAhead reports whether a holds any group provably fresher than
// b's: a group b lacks entirely, or one whose newest embedded epoch is
// newer. Freshness comes from the keys actually present, so a node that
// merely gossiped a high epoch without the data behind it is not ahead.
func digestAhead(a, b []groupDigest) bool {
	byName := make(map[string]groupDigest, len(b))
	for _, g := range b {
		byName[g.name] = g
	}
	for _, g := range a {
		tg, ok := byName[g.name]
		if !ok || g.maxEpoch > tg.maxEpoch {
			return true
		}
	}
	return false
}

// --- handlers ---

// registerRepairHandlers installs the repair RPCs.
func (n *Node) registerRepairHandlers() {
	n.ep.Handle(msgReplStatus, func(from ring.NodeID, payload []byte) ([]byte, error) {
		seq, first := n.store.ReplStatus()
		return encodeReplStatus(seq, first, n.store.Epoch()), nil
	})
	n.ep.Handle(msgWalShip, func(from ring.NodeID, payload []byte) ([]byte, error) {
		if len(payload) != 16 {
			return nil, errors.New("cluster: malformed ship request")
		}
		after := binary.BigEndian.Uint64(payload)
		maxBytes := int64(binary.BigEndian.Uint64(payload[8:]))
		if maxBytes <= 0 || maxBytes > shipBatchBytes*8 {
			maxBytes = shipBatchBytes
		}
		recs, more, truncated := n.store.ShipLog(after, maxBytes)
		return encodeShipResp(recs, more, truncated), nil
	})
	n.ep.Handle(msgReplDigest, func(from ring.NodeID, payload []byte) ([]byte, error) {
		return encodeDigest(n.computeDigest(from)), nil
	})
	n.ep.Handle(msgReplFetch, func(from ring.NodeID, payload []byte) ([]byte, error) {
		afterKey, maxBytes, err := decodeFetchReq(payload)
		if err != nil {
			return nil, err
		}
		if maxBytes <= 0 || maxBytes > fetchBatchBytes*8 {
			maxBytes = fetchBatchBytes
		}
		table := n.Table()
		var pairs []kvstore.KV
		var budget int64
		done := true
		lo := prefixEndKey(afterKey)
		n.store.Scan(lo, nil, func(k, v []byte) bool {
			placement, ok := placementOf(k, v)
			if !ok {
				return true
			}
			if !table.IsReplica(n.id, placement) || !table.IsReplica(from, placement) {
				return true
			}
			if budget+int64(len(k)+len(v)) > maxBytes && len(pairs) > 0 {
				done = false
				return false
			}
			pairs = append(pairs, kvstore.KV{
				Key: append([]byte(nil), k...),
				Val: append([]byte(nil), v...),
			})
			budget += int64(len(k) + len(v))
			return true
		})
		return encodeFetchResp(pairs, done), nil
	})
}

// prefixEndKey returns the smallest key strictly greater than k (for
// exclusive-start scans); nil input means scan from the beginning.
func prefixEndKey(k []byte) []byte {
	if len(k) == 0 {
		return nil
	}
	return append(append([]byte(nil), k...), 0)
}

// --- markers ---

func markerKey(peer ring.NodeID) []byte {
	return append([]byte(replMarkerPrefix), peer...)
}

// peerMarker returns the last peer-log position pulled from peer.
// synced is false when this node has never established a position with
// the peer — distinct from a marker at position zero, which means the
// sync point predates all of the peer's mutations (a cluster-birth
// baseline) and everything ships via the ordinary WAL path.
func (n *Node) peerMarker(peer ring.NodeID) (seq uint64, synced bool) {
	v, ok := n.store.Get(markerKey(peer))
	if !ok || len(v) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(v), true
}

// setPeerMarker durably records the peer-log position. Markers are
// node-private bookkeeping: a PutLocal keeps them out of the shipping
// sequence, so advancing a marker never looks like a fresh mutation to
// the peers watching this node's log.
func (n *Node) setPeerMarker(peer ring.NodeID, seq uint64) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	return n.store.PutLocal(markerKey(peer), b[:])
}

// --- catch-up ---

// replStatusOf asks peer for its shipping position.
func (n *Node) replStatusOf(ctx context.Context, peer ring.NodeID) (seq, firstAvail, epoch uint64, err error) {
	rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
	resp, err := n.ep.Request(rctx, peer, msgReplStatus, nil)
	cancel()
	if err != nil {
		return 0, 0, 0, err
	}
	return decodeReplStatus(resp)
}

// CatchUp pulls the delta this node missed from peer's log and replays
// it through the normal commit path, filtered to the placements the two
// nodes share. When peer has truncated past our position, it falls back
// to a full state transfer. Returns the number of records applied.
func (n *Node) CatchUp(ctx context.Context, peer ring.NodeID) (uint64, error) {
	t0 := time.Now()
	defer func() { n.repair.lastCatchUpUs.Store(time.Since(t0).Microseconds()) }()
	var applied uint64
	for {
		marker, _ := n.peerMarker(peer)
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		resp, err := n.ep.Request(rctx, peer, msgWalShip, encodeShipReq(marker, shipBatchBytes))
		cancel()
		if err != nil {
			return applied, err
		}
		recs, more, truncated, err := decodeShipResp(resp)
		if err != nil {
			return applied, err
		}
		if truncated {
			// Peer's log no longer reaches back to our position: the
			// snapshot-transfer fallback. We are the lagging side pulling
			// from an authoritative peer, so stale local-only records may
			// be deleted.
			n.repair.stateTransfers.Add(1)
			if err := n.stateTransfer(ctx, peer, true); err != nil {
				return applied, err
			}
			return applied, nil
		}
		if len(recs) == 0 {
			return applied, nil
		}
		a, err := n.applyShipped(recs)
		applied += a
		if err != nil {
			return applied, err
		}
		n.repair.catchUpBatches.Add(1)
		if err := n.setPeerMarker(peer, recs[len(recs)-1].Seq); err != nil {
			return applied, err
		}
		if !more {
			return applied, nil
		}
		if err := ctx.Err(); err != nil {
			return applied, err
		}
	}
}

// applyShipped replays shipped records: epoch raises go through the
// gossiper (which persists them), data records are filtered to shared
// placements and applied in one batched commit. Records whose effect is
// already present locally are skipped, so steady-state anti-entropy is
// read-only.
func (n *Node) applyShipped(recs []kvstore.ReplRecord) (uint64, error) {
	// The batch replays a contiguous log suffix, so only each key's
	// final op determines the outcome. Compress to last-op-per-key
	// before the present-locally checks: applying a stale intermediate
	// version while skipping its byte-equal final one would regress the
	// key to the older value.
	final := make([]kvstore.ReplOp, 0, len(recs))
	idx := make(map[string]int, len(recs))
	for _, rec := range recs {
		op, err := rec.Decode()
		if err != nil {
			if errors.Is(err, kvstore.ErrUnknownOp) {
				continue // version skew: newer peer record kinds are ignored
			}
			return 0, err
		}
		if op.Epoch > 0 {
			n.gsp.Advance(tuple.Epoch(op.Epoch))
			continue
		}
		if i, ok := idx[string(op.Key)]; ok {
			final[i] = op
			continue
		}
		idx[string(op.Key)] = len(final)
		final = append(final, op)
	}

	table := n.Table()
	ops := make([]kvstore.ReplOp, 0, len(final))
	var applied uint64
	for _, op := range final {
		if op.Del {
			// Deletes carry no value; the placement comes from the local
			// copy. Nothing local means nothing to delete.
			lv, ok := n.store.Get(op.Key)
			if !ok {
				n.repair.catchUpSkipped.Add(1)
				continue
			}
			placement, pok := placementOf(op.Key, lv)
			if !pok || !table.IsReplica(n.id, placement) {
				n.repair.catchUpSkipped.Add(1)
				continue
			}
			ops = append(ops, kvstore.ReplOp{Del: true, Key: op.Key})
			applied++
			continue
		}
		placement, pok := placementOf(op.Key, op.Val)
		if !pok || !table.IsReplica(n.id, placement) {
			n.repair.catchUpSkipped.Add(1)
			continue
		}
		if lv, ok := n.store.GetRetained(op.Key); ok && bytes.Equal(lv, op.Val) {
			n.repair.catchUpSkipped.Add(1)
			continue
		}
		if op.Key[0] == 'c' && n.catalogRegresses(op.Key, op.Val) {
			n.repair.catchUpSkipped.Add(1)
			continue
		}
		ops = append(ops, op)
		applied++
	}
	if len(ops) == 0 {
		return 0, nil
	}
	if err := n.store.ApplyBatch(ops); err != nil {
		return 0, err
	}
	n.repair.catchUpRecords.Add(applied)
	return applied, nil
}

// catalogRegresses reports whether adopting val for the catalog record
// at key would move its published-epoch history backwards relative to
// the local copy. Catalog records are mutable under a fixed key, so a
// replayed log suffix (or a fetched snapshot of a concurrently-written
// peer) can carry versions older than what direct replication already
// delivered; epoch histories only ever grow, which makes the newest
// epoch a safe freshness order.
func (n *Node) catalogRegresses(key, val []byte) bool {
	lv, ok := n.store.GetRetained(key)
	if !ok {
		return false
	}
	local, err := vstore.DecodeCatalog(lv)
	if err != nil {
		return false
	}
	shipped, err := vstore.DecodeCatalog(val)
	if err != nil {
		return true // never replace a parseable catalog with garbage
	}
	return newestEpoch(shipped) < newestEpoch(local)
}

func newestEpoch(c *vstore.Catalog) tuple.Epoch {
	if len(c.Epochs) == 0 {
		return 0
	}
	return c.Epochs[len(c.Epochs)-1]
}

// stateTransfer replaces WAL catch-up when the peer's log history is
// gone: a chunked ordered copy of every record the two nodes share,
// applying differences and — when deletes is true — deleting local
// records the peer lacks (only when their embedded epoch is at or below
// the peer's — a fresher local write must survive — and never catalog
// records). Callers pass deletes=false when this node may hold fresher
// records than the peer, so divergence repair only adds.
func (n *Node) stateTransfer(ctx context.Context, peer ring.NodeID, deletes bool) error {
	// Record the peer's position first: everything the transfer misses
	// lands after this seq and arrives via the next WAL catch-up.
	peerSeq, _, peerEpoch, err := n.replStatusOf(ctx, peer)
	if err != nil {
		return err
	}
	table := n.Table()
	var after []byte
	for {
		rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		resp, err := n.ep.Request(rctx, peer, msgReplFetch, encodeFetchReq(after, fetchBatchBytes))
		cancel()
		if err != nil {
			return err
		}
		pairs, done, err := decodeFetchResp(resp)
		if err != nil {
			return err
		}
		// The chunk covers (after, hi] of the shared keyspace; when the
		// peer is done it covers (after, +inf).
		var hi []byte
		if !done {
			if len(pairs) == 0 {
				return errors.New("cluster: fetch returned no progress")
			}
			hi = pairs[len(pairs)-1].Key
		}
		if err := n.mergeFetched(table, peer, peerEpoch, after, hi, pairs, deletes); err != nil {
			return err
		}
		if done {
			break
		}
		after = append([]byte(nil), hi...)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return n.setPeerMarker(peer, peerSeq)
}

// mergeFetched reconciles one fetched chunk against the local store:
// missing or differing records are applied; local shared records the
// peer lacks are deleted when provably stale (and deletes is set).
func (n *Node) mergeFetched(table *ring.Table, peer ring.NodeID, peerEpoch uint64, after, hi []byte, pairs []kvstore.KV, deletes bool) error {
	// Local shared keys in (after, hi] — or (after, +inf) for the final
	// chunk — in key order, mirroring the peer's scan predicate.
	type local struct{ k, v []byte }
	var locals []local
	lo := prefixEndKey(after)
	var scanHi []byte
	if hi != nil {
		scanHi = prefixEndKey(hi) // inclusive upper bound
	}
	n.store.Scan(lo, scanHi, func(k, v []byte) bool {
		placement, ok := placementOf(k, v)
		if !ok {
			return true
		}
		if !table.IsReplica(n.id, placement) || !table.IsReplica(peer, placement) {
			return true
		}
		locals = append(locals, local{append([]byte(nil), k...), v})
		return true
	})

	// Merge-join: both sides sorted.
	var ops []kvstore.ReplOp
	i, j := 0, 0
	for i < len(pairs) || j < len(locals) {
		var cmp int
		switch {
		case i >= len(pairs):
			cmp = 1
		case j >= len(locals):
			cmp = -1
		default:
			cmp = bytes.Compare(pairs[i].Key, locals[j].k)
		}
		switch {
		case cmp < 0: // peer-only: adopt
			ops = append(ops, kvstore.ReplOp{Key: pairs[i].Key, Val: pairs[i].Val})
			n.repair.fetchedKeys.Add(1)
			i++
		case cmp > 0: // local-only: delete if provably stale
			k := locals[j].k
			if deletes && k[0] != 'c' && keyEpoch(k) <= peerEpoch {
				ops = append(ops, kvstore.ReplOp{Del: true, Key: k})
				n.repair.mergeDeletes.Add(1)
			}
			j++
		default:
			if !bytes.Equal(pairs[i].Val, locals[j].v) &&
				!(pairs[i].Key[0] == 'c' && n.catalogRegresses(pairs[i].Key, pairs[i].Val)) {
				ops = append(ops, kvstore.ReplOp{Key: pairs[i].Key, Val: pairs[i].Val})
				n.repair.fetchedKeys.Add(1)
			}
			i++
			j++
		}
	}
	if len(ops) == 0 {
		return nil
	}
	return n.store.ApplyBatch(ops)
}

// --- anti-entropy ---

// RepairPeer runs one repair round against peer: WAL catch-up from the
// durable marker, then a digest comparison; divergence triggers a state
// transfer. Returns true when a repair beyond catch-up was needed.
//
// A node with no marker for the peer has never synced with it, and the
// missed-delta question is unanswerable: replaying the peer's log from
// zero would re-apply stale intermediate versions of records this node
// already holds fresher. So the first round goes straight to the digest
// comparison: matching digests just initialize the marker to the peer's
// position (records shipped twice later apply idempotently), diverging
// ones trigger the state transfer that would be needed anyway. Markers
// initialize cheaply at cluster birth — every store is empty, digests
// trivially match — so steady-state repair is pure WAL catch-up.
func (n *Node) RepairPeer(ctx context.Context, peer ring.NodeID) (repaired bool, err error) {
	return n.repairPeer(ctx, peer, true)
}

// repairPeer is RepairPeer with the digest comparison optional. Catch-up
// is incremental — an idle round ships nothing — but a digest scans the
// whole store on both sides, so the background loop only asks for one
// every few rotations. A first contact (no marker) always digests: the
// marker cannot initialize without one.
func (n *Node) repairPeer(ctx context.Context, peer ring.NodeID, withDigest bool) (repaired bool, err error) {
	_, synced := n.peerMarker(peer)
	first := !synced
	var baseline uint64
	if first {
		baseline, _, _, err = n.replStatusOf(ctx, peer)
		if err != nil {
			return false, err
		}
	} else if _, err := n.CatchUp(ctx, peer); err != nil {
		return false, err
	}
	if !withDigest && !first {
		return false, nil
	}
	rctx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
	resp, err := n.ep.Request(rctx, peer, msgReplDigest, nil)
	cancel()
	if err != nil {
		return false, err
	}
	theirs, err := decodeDigest(resp)
	if err != nil {
		return false, err
	}
	mine := n.computeDigest(peer)
	if digestsEqual(mine, theirs) {
		if first {
			if err := n.setPeerMarker(peer, baseline); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	// Divergence. The digest only says the shared sets differ, not who is
	// right: adopting the state of a peer that is merely behind (a
	// rejoining replica mid catch-up) would merge-delete records it has
	// not received yet — its gossiped epoch runs ahead of its data. When
	// this node is strictly fresher, skip; the peer repairs itself by
	// pulling from us. When both sides hold fresh records the transfer
	// runs add-only, so divergence repair never destroys the newer write.
	selfAhead := digestAhead(mine, theirs)
	if selfAhead && !digestAhead(theirs, mine) {
		return false, nil
	}
	n.repair.antiEntropyRepairs.Add(1)
	n.repair.stateTransfers.Add(1)
	if err := n.stateTransfer(ctx, peer, !selfAhead); err != nil {
		return true, err
	}
	return true, nil
}

// Repair runs one repair round against every other table member. A
// rejoining node calls this before serving to reach the cluster's
// durable state through WAL catch-up instead of a full rebalance.
func (n *Node) Repair(ctx context.Context) error {
	var lastErr error
	for _, peer := range n.Table().Members() {
		if peer == n.id {
			continue
		}
		if _, err := n.RepairPeer(ctx, peer); err != nil {
			lastErr = fmt.Errorf("cluster: repair via %s: %w", peer, err)
		}
	}
	n.repair.antiEntropyRounds.Add(1)
	return lastErr
}

// StartRepair launches the low-priority background anti-entropy loop:
// every interval, one repair round against a rotating peer. Every round
// runs WAL catch-up; the full-scan digest comparison runs once every
// repairDigestEvery rotations through the peer list, keeping the
// steady-state cost independent of the amount of stored data.
func (n *Node) StartRepair(interval time.Duration) {
	if n.repair.stop != nil {
		return
	}
	n.repair.stop = make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var turn int
		for {
			select {
			case <-n.repair.stop:
				return
			case <-ticker.C:
			}
			members := n.Table().Members()
			var peers []ring.NodeID
			for _, m := range members {
				if m != n.id {
					peers = append(peers, m)
				}
			}
			if len(peers) == 0 {
				continue
			}
			peer := peers[turn%len(peers)]
			withDigest := (turn/len(peers))%repairDigestEvery == 0
			turn++
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RequestTimeout*4)
			_, _ = n.repairPeer(ctx, peer, withDigest)
			cancel()
			n.repair.antiEntropyRounds.Add(1)
		}
	}()
}

// StopRepair halts the background anti-entropy loop.
func (n *Node) StopRepair() {
	if n.repair.stop != nil && n.repair.stopped.CompareAndSwap(false, true) {
		close(n.repair.stop)
	}
}

// ReplStats snapshots the repair counters and the current lag view. Lag
// to a peer is (the peer's gossiped seq) − (our durable marker for it):
// raw seqs are per-store and incomparable across nodes, but the marker
// difference is exactly the peer's shippable backlog we have not pulled.
func (n *Node) ReplStats() ReplStats {
	st := ReplStats{
		CatchUpBatches:     n.repair.catchUpBatches.Load(),
		CatchUpRecords:     n.repair.catchUpRecords.Load(),
		CatchUpSkipped:     n.repair.catchUpSkipped.Load(),
		StateTransfers:     n.repair.stateTransfers.Load(),
		AntiEntropyRounds:  n.repair.antiEntropyRounds.Load(),
		AntiEntropyRepairs: n.repair.antiEntropyRepairs.Load(),
		FetchedKeys:        n.repair.fetchedKeys.Load(),
		MergeDeletes:       n.repair.mergeDeletes.Load(),
		LastCatchUpUs:      n.repair.lastCatchUpUs.Load(),
	}
	peerSeqs := n.gsp.PeerSeqs()
	if len(peerSeqs) > 0 {
		st.PeerLags = make(map[string]uint64, len(peerSeqs))
	}
	for peer, seq := range peerSeqs {
		var lag uint64
		if m, _ := n.peerMarker(peer); seq > m {
			lag = seq - m
		}
		st.PeerLags[string(peer)] = lag
		if lag > st.MaxLag {
			st.MaxLag = lag
		}
	}
	return st
}
