package cluster

import (
	"testing"
	"time"

	"orchestra/internal/vstore"
)

func TestLeaseTableGrantConflictExpiry(t *testing.T) {
	var lt leaseTable
	now := time.Now()
	fence, holder, _ := lt.grant("r", "a", time.Second, now)
	if fence == 0 || holder != "" {
		t.Fatalf("first grant refused: fence=%d holder=%q", fence, holder)
	}
	// A second owner is refused while the lease is live.
	if f, h, wait := lt.grant("r", "b", time.Second, now); f != 0 || h != "a" || wait <= 0 {
		t.Fatalf("conflicting grant not refused: fence=%d holder=%q wait=%v", f, h, wait)
	}
	// The holder itself refreshes freely, with a new fence.
	f2, _, _ := lt.grant("r", "a", time.Second, now)
	if f2 <= fence {
		t.Fatalf("refresh fence %d not above %d", f2, fence)
	}
	// Expiry reclaims the lease for a new owner.
	if f, h, _ := lt.grant("r", "b", time.Second, now.Add(2*time.Second)); f == 0 || h != "" {
		t.Fatalf("expired lease not reclaimed: fence=%d holder=%q", f, h)
	}
	// Release by a non-owner is a no-op; by the owner it frees the lease.
	lt.release("r", "a")
	if _, h, _ := lt.grant("r", "c", time.Second, now); h != "b" {
		t.Fatalf("foreign release dropped the lease (holder=%q)", h)
	}
	lt.release("r", "b")
	if f, h, _ := lt.grant("r", "c", time.Second, now); f == 0 || h != "" {
		t.Fatalf("release did not free the lease: fence=%d holder=%q", f, h)
	}
}

func TestLeaseCodecRoundTrip(t *testing.T) {
	req := encodeLeaseReq(leaseOpAcquire, "orders", "node-1", 1500*time.Millisecond)
	op, rel, owner, ttl, err := decodeLeaseReq(req)
	if err != nil || op != leaseOpAcquire || rel != "orders" || owner != "node-1" || ttl != 1500*time.Millisecond {
		t.Fatalf("req round trip: %v %q %q %v %v", op, rel, owner, ttl, err)
	}
	resp := encodeLeaseResp(7, "node-2", 250*time.Millisecond)
	granted, fence, holder, wait, err := decodeLeaseResp(resp)
	if err != nil || granted || fence != 7 || holder != "node-2" || wait != 250*time.Millisecond {
		t.Fatalf("resp round trip: %v %d %q %v %v", granted, fence, holder, wait, err)
	}
	if granted, _, holder, _, err := decodeLeaseResp(encodeLeaseResp(9, "", 0)); err != nil || !granted || holder != "" {
		t.Fatalf("granted resp round trip: %v %q %v", granted, holder, err)
	}
}

// TestPublishIdempotentRetry resends a publish with the same ID and
// expects the original epoch back with no duplicate rows.
func TestPublishIdempotentRetry(t *testing.T) {
	l := testCluster(t, 5)
	ctx := ctxT(t)
	n := l.Node(0)
	if err := n.CreateRelation(ctx, rSchema(t)); err != nil {
		t.Fatal(err)
	}
	ups := []vstore.Update{insertRow("k1", "v1"), insertRow("k2", "v2")}
	e1, err := n.PublishWith(ctx, "R", ups, PublishOptions{ID: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Retry from a different node, as a failed-over client would.
	e2, err := l.Node(1).PublishWith(ctx, "R", ups, PublishOptions{ID: 42})
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Fatalf("retry applied a new epoch %d, want dedup to %d", e2, e1)
	}
	rows, err := n.Retrieve(ctx, "R", n.Gossip().Current(), AllPred())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("retry duplicated rows: got %d, want 2", len(rows))
	}
	cat, err := n.GetCatalog(ctx, "R")
	if err != nil {
		t.Fatal(err)
	}
	if cat.Rows != 2 {
		t.Fatalf("catalog row stat %d, want 2", cat.Rows)
	}
	if _, ok := cat.FindPub(42); !ok {
		t.Fatal("catalog lost the publish mark")
	}
}
