package orchestra

// Engine scan-path microbenchmarks (single node, no wire): the reference
// workload for the batched-pipeline / compiled-predicate optimization
// work. CI runs these as a smoke test alongside the Wire codec benches;
// cmd/orchestra-load -enginebench runs the same shape for longer and
// records BENCH_engine.json.

import (
	"fmt"
	"testing"

	"orchestra/internal/tuple"
)

const engineScanRows = 5000

func loadScanRelation(rows int) func(*Cluster) error {
	return func(c *Cluster) error {
		if err := c.CreateRelation(NewSchema("scanload", "k:string", "grp:int", "v:int").Key("k")); err != nil {
			return err
		}
		const batch = 1000
		for lo := 0; lo < rows; lo += batch {
			hi := lo + batch
			if hi > rows {
				hi = rows
			}
			b := make([]tuple.Row, 0, hi-lo)
			for i := lo; i < hi; i++ {
				b = append(b, tuple.Row{tuple.S(fmt.Sprintf("k%06d", i)), tuple.I(int64(i % 17)), tuple.I(int64(i))})
			}
			if _, err := c.PublishTyped(0, "scanload", b); err != nil {
				return err
			}
		}
		return nil
	}
}

func benchEngineScan(b *testing.B, sqlText string, wantRows int) {
	b.Helper()
	c := benchCluster(b, "enginescan1", 1, loadScanRelation(engineScanRows))
	res, err := c.Query(sqlText)
	if err != nil {
		b.Fatalf("warm: %v", err)
	}
	if len(res.Rows) != wantRows {
		b.Fatalf("query answered %d rows, want %d", len(res.Rows), wantRows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(sqlText); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(engineScanRows)*float64(b.N)/b.Elapsed().Seconds(), "scanrows/s")
}

// BenchmarkEngineScanFiltered is the reference 5k-row filtered scan: a
// range predicate on a non-key column, so every stored tuple is scanned
// and filtered (nothing is satisfied by the index side alone).
func BenchmarkEngineScanFiltered(b *testing.B) {
	benchEngineScan(b,
		fmt.Sprintf("SELECT k, grp, v FROM scanload WHERE v >= 0 AND v < %d", engineScanRows),
		engineScanRows)
}

// BenchmarkEngineScanSelective keeps 10% of the scanned rows: the
// filter-dominated variant (select cost amortizes over dropped rows).
func BenchmarkEngineScanSelective(b *testing.B) {
	benchEngineScan(b,
		fmt.Sprintf("SELECT k, grp, v FROM scanload WHERE v >= %d AND v < %d", engineScanRows/2, engineScanRows/2+engineScanRows/10),
		engineScanRows/10)
}

// TestEngineScanAllocBudget is the GC-allocations regression gate on the
// served scan path: the reference 5k-row filtered scan, drained through
// the columnar QueryBatches hand-off, must stay far below one allocation
// per scanned row. The batched pipeline runs at ~0.05 allocs/row; the
// ceiling leaves room for background cluster noise while still failing
// loudly if per-row materialization (the pre-PR state: several allocs
// per row) ever creeps back in.
func TestEngineScanAllocBudget(t *testing.T) {
	c, err := NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := loadScanRelation(engineScanRows)(c); err != nil {
		t.Fatal(err)
	}
	q := fmt.Sprintf("SELECT k, grp, v FROM scanload WHERE v >= 0 AND v < %d", engineScanRows)
	gate := func(t *testing.T, opts QueryOptions, wantStreamed bool) {
		run := func() {
			n := 0
			res, err := c.QueryBatches(q, opts,
				func(*Result) error { return nil },
				func(rows []tuple.Row) error { n += len(rows); return nil },
				func(b *tuple.Batch) error { n += b.N; return nil })
			if err != nil {
				t.Fatal(err)
			}
			if n != engineScanRows {
				t.Fatalf("query answered %d rows, want %d", n, engineScanRows)
			}
			if wantStreamed && res.Streamed != engineScanRows {
				t.Fatalf("Streamed = %d, want %d — the gate fell back to the collected path", res.Streamed, engineScanRows)
			}
		}
		run() // warm caches and pools
		allocs := testing.AllocsPerRun(10, run)
		perRow := allocs / float64(engineScanRows)
		t.Logf("served scan: %.0f allocs/query, %.3f allocs/row", allocs, perRow)
		const ceiling = 0.5 // allocs per scanned row
		if perRow > ceiling {
			t.Fatalf("scan path allocates %.3f per scanned row (%.0f per query), ceiling %.2f — result materialization is back on the hot path",
				perRow, allocs, ceiling)
		}
	}
	t.Run("default", func(t *testing.T) { gate(t, QueryOptions{}, false) })
	// Tracing costs spans per query, never allocations per row; the same
	// ceiling holds with the span tree collected.
	t.Run("traced", func(t *testing.T) { gate(t, QueryOptions{Trace: true}, true) })
	// The streamed-during-execution path must fit the same budget — and
	// this subtest additionally pins that the scan really does stream
	// (Result.Streamed counts every row), so a silent fallback to the
	// collected path fails the gate rather than flattering it.
	t.Run("streamed", func(t *testing.T) { gate(t, QueryOptions{}, true) })
}

// BenchmarkEngineScanProvenance measures the filtered scan with
// provenance tracking on (the recovery-support overhead of §VI-E on the
// scan path).
func BenchmarkEngineScanProvenance(b *testing.B) {
	c := benchCluster(b, "enginescan1", 1, loadScanRelation(engineScanRows))
	q := fmt.Sprintf("SELECT k, grp, v FROM scanload WHERE v >= 0 AND v < %d", engineScanRows)
	if _, err := c.QueryOpts(q, QueryOptions{Provenance: true}); err != nil {
		b.Fatalf("warm: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.QueryOpts(q, QueryOptions{Provenance: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(engineScanRows)*float64(b.N)/b.Elapsed().Seconds(), "scanrows/s")
}
