package orchestra

// Query-lifecycle tracing: the span tree a traced query returns must
// account for the distributed execution — every participating node's
// fragment, the ship hops between them, and the initiator's final
// pipeline — with row counts that add up to the answer.

import (
	"testing"
	"time"
)

// collectSpans flattens a span tree, depth first.
func collectSpans(root *TraceSpan) []*TraceSpan {
	if root == nil {
		return nil
	}
	out := []*TraceSpan{root}
	for _, ch := range root.Children {
		out = append(out, collectSpans(ch)...)
	}
	return out
}

// spansNamed filters a flattened tree by span name.
func spansNamed(spans []*TraceSpan, name string) []*TraceSpan {
	var out []*TraceSpan
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestQueryTraceSpanTree runs a traced distributed filter query and
// checks the span tree's shape and accounting: a root covering the
// whole execution, a plan span, one fragment span per shipping node
// whose row counts sum to the answer, and a final-pipeline span.
func TestQueryTraceSpanTree(t *testing.T) {
	c := newTestCluster(t, 2)
	mustCreate(t, c, NewSchema("big", "k:int", "g:int").Key("k"))
	rows := make(Rows, 2000)
	for i := range rows {
		rows[i] = Row{i, i % 37}
	}
	mustPublish(t, c, "big", rows)

	res, err := c.QueryOpts("SELECT k, g FROM big WHERE k < 1200", QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1200 {
		t.Fatalf("rows: %d, want 1200", len(res.Rows))
	}
	if len(res.TraceID) != 16 {
		t.Fatalf("trace id %q, want 16 hex digits", res.TraceID)
	}
	root := res.Trace
	if root == nil {
		t.Fatal("no trace on traced query")
	}
	if root.Name != "query" || root.DurUs <= 0 {
		t.Fatalf("root span: %+v", root)
	}

	spans := collectSpans(root)
	if len(spansNamed(spans, "plan")) != 1 {
		t.Fatalf("want exactly one plan span, tree: %v", spans)
	}
	if n := len(spansNamed(spans, "final")); n != 1 {
		t.Fatalf("want exactly one final span, got %d", n)
	}
	if n := len(spansNamed(spans, "scan.pass")); n == 0 {
		t.Fatal("no scan.pass spans in tree")
	}

	// Every live node ran a fragment; together they shipped exactly the
	// answer (a pure filter query: no final operator drops rows).
	frags := spansNamed(spans, "fragment")
	if len(frags) != 2 {
		t.Fatalf("fragment spans: %d, want 2 (one per node)", len(frags))
	}
	nodes := map[string]bool{}
	var shipped int64
	for _, f := range frags {
		if f.Node == "" {
			t.Fatalf("fragment span without node id: %+v", f)
		}
		nodes[f.Node] = true
		shipped += f.Rows
	}
	if len(nodes) != 2 {
		t.Fatalf("fragment node ids not distinct: %v", nodes)
	}
	if shipped != int64(len(res.Rows)) {
		t.Fatalf("fragments shipped %d rows, result has %d", shipped, len(res.Rows))
	}

	// Children start within the root's window.
	for _, sp := range spans[1:] {
		if sp.StartUs < 0 || sp.StartUs > root.DurUs {
			t.Fatalf("span %s starts at %dus, outside root window %dus", sp.Name, sp.StartUs, root.DurUs)
		}
	}

	// An untraced query stays untraced.
	plain := mustQuery(t, c, "SELECT k FROM big WHERE k < 10")
	if plain.Trace != nil || plain.TraceID != "" {
		t.Fatalf("untraced query returned a trace: %q", plain.TraceID)
	}
}

// TestQueryTraceIncrementalRecovery traces a query that loses a node
// mid-flight and recovers incrementally: the span tree must survive the
// recovery/replay path and still deliver fragment spans; when recovery
// actually ran, the replayed fragments report their recovery phase.
func TestQueryTraceIncrementalRecovery(t *testing.T) {
	c := newTestCluster(t, 6)
	mustCreate(t, c, NewSchema("big", "k:int", "g:int").Key("k"))
	rows := make(Rows, 3000)
	for i := range rows {
		rows[i] = Row{i, i % 37}
	}
	mustPublish(t, c, "big", rows)

	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Kill(3)
	}()
	res, err := c.QueryOpts(
		"SELECT g, COUNT(*) AS n FROM big GROUP BY g",
		QueryOptions{Recovery: RecoverIncremental, Trace: true})
	if err != nil {
		t.Fatalf("traced query with failure: %v", err)
	}
	if len(res.Rows) != 37 {
		t.Fatalf("groups: %d", len(res.Rows))
	}
	total := int64(0)
	for _, r := range res.Rows {
		total += r[1].AsInt()
	}
	if total != 3000 {
		t.Fatalf("count total %d, want 3000", total)
	}

	if res.Trace == nil || res.TraceID == "" {
		t.Fatal("recovered query lost its trace")
	}
	spans := collectSpans(res.Trace)
	frags := spansNamed(spans, "fragment")
	if len(frags) == 0 {
		t.Fatal("no fragment spans after recovery")
	}
	if len(spansNamed(spans, "final")) != 1 {
		t.Fatal("missing final span after recovery")
	}
	if res.Phases > 1 {
		// Incremental recovery re-ran work at the surviving nodes; the
		// last fragment report carries the recovery phase it served.
		replayed := 0
		for _, f := range frags {
			if f.Phase > 0 {
				replayed++
			}
		}
		if replayed == 0 {
			t.Fatalf("query ran %d phases but no fragment span reports a recovery phase", res.Phases)
		}
	}
}

// TestViewCacheHitTrace: a cache-served traced query's trace is the
// lookup itself — one root attributing the hit, no engine spans.
func TestViewCacheHitTrace(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	c.EnableQueryCache(8)

	const q = "SELECT item FROM inv WHERE qty > 100"
	if _, err := c.QueryOpts(q, QueryOptions{Trace: true}); err != nil {
		t.Fatal(err)
	}
	hit, err := c.QueryOpts(q, QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("second query missed the view cache")
	}
	if hit.Trace == nil || hit.Trace.CacheHits != 1 {
		t.Fatalf("cache-hit trace: %+v", hit.Trace)
	}
	if hit.Trace.Rows != int64(len(hit.Rows)) {
		t.Fatalf("cache-hit trace rows %d, result %d", hit.Trace.Rows, len(hit.Rows))
	}
	if len(hit.Trace.Children) != 0 {
		t.Fatalf("cache hit grew engine spans: %v", hit.Trace.Children)
	}
}

// TestClusterCacheStats: the cache counters surface through the
// embedded API with both caches represented.
func TestClusterCacheStats(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	c.EnableQueryCache(8)
	const q = "SELECT item FROM inv"
	mustQuery(t, c, q)
	mustQuery(t, c, q)

	stats := c.CacheStats(0)
	views, ok := stats["views"]
	if !ok {
		t.Fatalf("no view-cache stats: %v", stats)
	}
	if views.Hits != 1 || views.Misses != 1 {
		t.Fatalf("view cache hits/misses %d/%d, want 1/1", views.Hits, views.Misses)
	}
	if _, ok := stats["pages"]; !ok {
		t.Fatalf("no page-cache stats: %v", stats)
	}
}
