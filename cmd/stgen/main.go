// Command stgen emits the STBenchmark-style relations (paper §VI-A) as
// pipe-delimited text for inspection, mirroring tpchgen.
//
// Usage:
//
//	stgen -tuples 1000 -table stb_copy
//	stgen -tuples 1000 -dir /tmp/stb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"orchestra/internal/stbench"
	"orchestra/internal/tuple"
)

func main() {
	tuples := flag.Int("tuples", 10000, "tuples per relation")
	table := flag.String("table", "", "single relation to emit to stdout")
	dir := flag.String("dir", "", "emit every relation to <dir>/<name>.tbl")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	data := stbench.Generate(stbench.Config{Tuples: *tuples, Seed: *seed})
	if *table != "" {
		rows, ok := data[*table]
		if !ok {
			log.Fatalf("stgen: unknown relation %q", *table)
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		writeRows(w, rows)
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "stgen: need -table or -dir; relations:")
		for _, s := range stbench.Schemas() {
			fmt.Fprintf(os.Stderr, "  %-10s %d columns, %d rows\n",
				s.Relation, s.Arity(), len(data[s.Relation]))
		}
		os.Exit(2)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, rows := range data {
		f, err := os.Create(filepath.Join(*dir, name+".tbl"))
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		writeRows(w, rows)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", f.Name(), len(rows))
	}
}

func writeRows(w *bufio.Writer, rows []tuple.Row) {
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				w.WriteByte('|')
			}
			w.WriteString(v.String())
		}
		w.WriteByte('\n')
	}
}
