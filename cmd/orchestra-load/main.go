// Command orchestra-load is a closed-loop load generator for a served
// ORCHESTRA deployment: N concurrent clients each run queries
// back-to-back against one or more endpoints for a fixed duration, then
// the tool reports aggregate throughput, client-observed latency
// percentiles, wire bytes per query, and the servers' own
// admission-control and per-op counters.
//
// Drive an external deployment (orchestra-node -serve, one addr per
// node, clients round-robin across them):
//
//	orchestra-load -addrs 127.0.0.1:7101,127.0.0.1:7102 -clients 16 -duration 10s
//
// Or self-host an in-process cluster and serve every node on a loopback
// port — the one-command benchmark scenario:
//
//	orchestra-load -local 3 -clients 8 -duration 10s
//
// The wire codec is selectable (-codec json|binary|auto) and the result
// size per query is controllable (-resultrows), so the two codecs can be
// compared on identical workloads:
//
//	orchestra-load -local 3 -clients 8 -rows 5000 -resultrows 1000 -codec json
//	orchestra-load -local 3 -clients 8 -rows 5000 -resultrows 1000 -codec binary
//
// Each run appends a machine-readable record to -out (default
// BENCH_wire.json), accumulating the perf trajectory across runs/PRs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"orchestra"
	"orchestra/client"
)

func main() {
	addrs := flag.String("addrs", "", "comma-separated served endpoints to drive")
	local := flag.Int("local", 0, "self-host an in-process cluster of this many nodes, serving each on a loopback port")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "measured run length")
	warmup := flag.Duration("warmup", time.Second, "untimed warmup before measuring")
	rows := flag.Int("rows", 500, "rows seeded into the load relation (local mode, or when -seed is set)")
	resultRows := flag.Int("resultrows", 0, "target result rows per query (0: legacy mixed templates of ~rows/16)")
	distinct := flag.Int("distinct", 16, "distinct query templates per run")
	codec := flag.String("codec", client.CodecAuto, "result codec: auto, json, or binary")
	compress := flag.Bool("compress", true, "local mode: flate-compress streamed batches (disable on loopback to trade bytes for CPU)")
	maxQ := flag.Int("maxq", 0, "local mode: per-endpoint admission-control limit (0 = 2×GOMAXPROCS)")
	useCache := flag.Bool("cache", false, "local mode: enable the cluster's materialized-view cache")
	seed := flag.Bool("seed", false, "create and seed the load relation on external endpoints too")
	firstByte := flag.Bool("firstbyte", false, "consume results via QueryStream and measure time-to-first-batch alongside full-result latency")
	topK := flag.Int("topk", 0, "append ORDER BY v DESC LIMIT K to every range-scan template (top-K pushdown workload)")
	out := flag.String("out", "BENCH_wire.json", "append the run record to this JSON file (empty: skip)")
	engineBench := flag.Bool("enginebench", false, "run the scan-heavy engine workload (embedded, single core, no wire) instead of the wire load")
	note := flag.String("note", "", "free-form label recorded with the run")
	flag.Parse()

	if *engineBench {
		o := *out
		if o == "BENCH_wire.json" {
			o = "BENCH_engine.json"
		}
		er := *rows
		if !isFlagSet("rows") {
			er = 5000 // the ROADMAP's reference scan size
		}
		runEngineBench(er, *resultRows, *duration, *note, o)
		return
	}

	var endpoints []string
	var cleanup func()
	switch {
	case *local > 0:
		var err error
		endpoints, cleanup, err = selfHost(*local, *maxQ, *useCache, *compress)
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
	case *addrs != "":
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				endpoints = append(endpoints, a)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "orchestra-load: need -addrs or -local; see -help")
		os.Exit(2)
	}

	ctx := context.Background()
	var seedLat []time.Duration
	if *local > 0 || *seed {
		var err error
		if seedLat, err = seedData(ctx, endpoints[0], *rows); err != nil {
			log.Fatal(err)
		}
	}

	queries := makeQueries(*distinct, *rows, *resultRows)
	if *topK > 0 {
		if *resultRows <= 0 {
			log.Fatal("orchestra-load: -topk requires -resultrows (range-scan templates)")
		}
		for i, q := range queries {
			queries[i] = fmt.Sprintf("%s ORDER BY v DESC LIMIT %d", q, *topK)
		}
	}
	rep := run(ctx, endpoints, queries, *clients, *codec, *warmup, *duration, *firstByte)
	if ph := latSummary("seed", seedLat); ph != nil {
		rep.Phases = append([]phaseLat{*ph}, rep.Phases...)
	}
	rep.Note = *note
	rep.Rows = *rows
	rep.ResultRows = *resultRows
	rep.Distinct = *distinct
	rep.LocalNodes = *local
	rep.Compress = *compress
	if *out != "" {
		if err := appendBenchRecord(*out, rep); err != nil {
			log.Printf("orchestra-load: write %s: %v", *out, err)
		} else {
			log.Printf("run recorded in %s", *out)
		}
	}
}

// isFlagSet reports whether the named flag was passed explicitly.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// selfHost starts an n-node in-process cluster and serves every node on
// its own loopback port, so clients exercise the full wire path.
func selfHost(n, maxQ int, useCache, compress bool) ([]string, func(), error) {
	c, err := orchestra.NewCluster(n)
	if err != nil {
		return nil, nil, err
	}
	if useCache {
		c.EnableQueryCache(4096)
	}
	compressMin := 0 // server default
	if !compress {
		compressMin = -1
	}
	var servers []*orchestra.Server
	var endpoints []string
	for i := 0; i < n; i++ {
		s, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{
			Node:                 i,
			MaxConcurrentQueries: maxQ,
			StreamCompressMin:    compressMin,
		})
		if err != nil {
			c.Shutdown()
			return nil, nil, err
		}
		servers = append(servers, s)
		endpoints = append(endpoints, s.Addr())
	}
	log.Printf("local cluster: %d nodes served on %s", n, strings.Join(endpoints, ", "))
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
		c.Shutdown()
	}
	return endpoints, cleanup, nil
}

// seedData creates the load relation and publishes rows through the
// wire, returning the client-observed latency of each publish batch.
func seedData(ctx context.Context, addr string, rows int) ([]time.Duration, error) {
	cl, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if err := cl.Create(ctx, "load", []string{"k:string", "grp:int", "v:int"}, "k"); err != nil {
		return nil, err
	}
	const batch = 250
	var lat []time.Duration
	acked := 0
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		b := make([][]any, 0, hi-lo)
		for i := lo; i < hi; i++ {
			b = append(b, []any{fmt.Sprintf("k%06d", i), i % 17, i})
		}
		start := time.Now()
		if _, err := cl.Publish(ctx, "load", b); err != nil {
			return nil, fmt.Errorf("seed aborted: publish failed after %d/%d rows acknowledged: %w",
				acked, rows, err)
		}
		acked = hi
		lat = append(lat, time.Since(start))
	}
	// Don't run the benchmark against a partially seeded relation: verify
	// the acknowledged rows are all queryable before declaring the seed
	// done (a silent shortfall would skew every per-query number).
	res, err := cl.Query(ctx, "SELECT COUNT(*) FROM load")
	if err != nil {
		return nil, fmt.Errorf("seed verification query: %w", err)
	}
	got := int64(-1)
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 {
		switch v := res.Rows[0][0].(type) {
		case int64:
			got = v
		case float64:
			got = int64(v)
		}
	}
	if got != int64(rows) {
		return nil, fmt.Errorf("seed verification: COUNT(*) = %d, want %d acknowledged rows", got, rows)
	}
	log.Printf("seeded %d rows into load (verified by count)", rows)
	return lat, nil
}

// makeQueries builds the template mix. With resultRows > 0 every
// template is a range scan answering ~resultRows rows — the
// codec-comparison workload. Otherwise the legacy mix: selective scans
// and one grouped aggregate, parameterized so -distinct controls
// view-cache reuse.
func makeQueries(distinct, rows, resultRows int) []string {
	if distinct < 1 {
		distinct = 1
	}
	qs := make([]string, 0, distinct)
	if resultRows > 0 {
		width := resultRows
		if width > rows {
			width = rows
		}
		span := rows - width
		for i := 0; i < distinct; i++ {
			lo := 0
			if distinct > 1 && span > 0 {
				lo = (i * span) / (distinct - 1)
			}
			qs = append(qs, fmt.Sprintf("SELECT k, grp, v FROM load WHERE v >= %d AND v < %d", lo, lo+width))
		}
		return qs
	}
	width := rows/16 + 1
	for i := 0; i < distinct; i++ {
		switch i % 4 {
		case 0, 1:
			lo := (i * rows) / (distinct + 1)
			qs = append(qs, fmt.Sprintf("SELECT k, v FROM load WHERE v >= %d AND v < %d", lo, lo+width))
		case 2:
			qs = append(qs, fmt.Sprintf("SELECT k FROM load WHERE grp = %d", i%17))
		default:
			qs = append(qs, "SELECT grp, COUNT(*) AS n FROM load GROUP BY grp")
		}
	}
	return qs
}

type clientStats struct {
	lat      []time.Duration
	fbLat    []time.Duration // time-to-first-batch (firstbyte mode)
	bytes    int64
	respRows int64
	strRows  int64 // rows the server streamed during execution
	errs     int
	streamed bool
}

// phaseLat is one workload phase's client-observed latency summary.
type phaseLat struct {
	Phase  string `json:"phase"`
	Count  int    `json:"count"`
	MeanUs int64  `json:"mean_us"`
	P50Us  int64  `json:"p50_us"`
	P95Us  int64  `json:"p95_us"`
	P99Us  int64  `json:"p99_us"`
	MaxUs  int64  `json:"max_us"`
}

// latSummary condenses a phase's latency samples (nil when empty).
// Sorts its argument in place.
func latSummary(phase string, lat []time.Duration) *phaseLat {
	if len(lat) == 0 {
		return nil
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		return lat[int(p/100*float64(len(lat)-1))].Microseconds()
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return &phaseLat{
		Phase:  phase,
		Count:  len(lat),
		MeanUs: (sum / time.Duration(len(lat))).Microseconds(),
		P50Us:  pct(50),
		P95Us:  pct(95),
		P99Us:  pct(99),
		MaxUs:  lat[len(lat)-1].Microseconds(),
	}
}

// benchRecord is one run's machine-readable result.
type benchRecord struct {
	Timestamp  string  `json:"timestamp"`
	Note       string  `json:"note,omitempty"`
	Codec      string  `json:"codec"`
	Streamed   bool    `json:"streamed"`
	LocalNodes int     `json:"local_nodes,omitempty"`
	Endpoints  int     `json:"endpoints"`
	Clients    int     `json:"clients"`
	Rows       int     `json:"rows"`
	ResultRows int     `json:"resultrows"`
	Distinct   int     `json:"distinct"`
	Compress   bool    `json:"compress"`
	DurationS  float64 `json:"duration_s"`
	QueriesOK  int     `json:"queries_ok"`
	Errors     int     `json:"errors"`
	QPS        float64 `json:"qps"`
	MeanUs     int64   `json:"mean_us"`
	P50Us      int64   `json:"p50_us"`
	P90Us      int64   `json:"p90_us"`
	P95Us      int64   `json:"p95_us"`
	P99Us      int64   `json:"p99_us"`
	MaxUs      int64   `json:"max_us"`
	BytesPerQ  int64   `json:"bytes_per_query"`
	RowsPerQ   float64 `json:"rows_per_query"`
	WireMBps   float64 `json:"wire_mb_per_s"`
	// Phases are the per-phase (seed, query) client-side latency
	// summaries; the top-level latency fields repeat the query phase.
	Phases []phaseLat `json:"phases,omitempty"`
	// FirstBatch is the time-to-first-batch latency summary (-firstbyte
	// runs only): how long a streaming consumer waits before the first
	// result rows are in hand. The top-level latency fields remain
	// full-result (last byte) latency, so first_batch.p50_us vs p50_us
	// is the streaming win for the run's workload.
	FirstBatch *phaseLat `json:"first_batch,omitempty"`
	// StreamedRows counts rows the servers emitted during execution
	// (from the stream tails); zero means every query took the
	// collect-then-emit path (e.g. a pure top-K workload).
	StreamedRows int64 `json:"streamed_rows,omitempty"`
	// Failover aggregates the clients' retry/failover counters: on a
	// healthy deployment Retries and Failovers stay zero, so a nonzero
	// value in a recorded run is itself a finding.
	Failover client.Counters `json:"failover"`
}

// run drives the closed loop, prints the report, and returns the record.
// With firstByte set, clients consume results through QueryStream and
// each query contributes two samples: time-to-first-batch and
// full-result latency.
func run(ctx context.Context, endpoints, queries []string, clients int, codec string, warmup, duration time.Duration, firstByte bool) *benchRecord {
	conns := make([]*client.Client, clients)
	for i := range conns {
		cl, err := client.Dial(endpoints[i%len(endpoints)], client.Options{PoolSize: 1, Codec: codec})
		if err != nil {
			log.Fatal(err)
		}
		conns[i] = cl
		defer cl.Close()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	measuring := make(chan struct{})
	stats := make([]clientStats, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) * 2654435761))
			cl := conns[i]
			armed := measuring // local: nil-ed once the window opens
			measure := false
			for {
				select {
				case <-stop:
					return
				case <-armed:
					measure = true
					armed = nil
				default:
				}
				q := queries[rng.Intn(len(queries))]
				if firstByte {
					start := time.Now()
					st, err := cl.QueryStream(ctx, q)
					var fb, total time.Duration
					var rows int64
					if err == nil {
						for st.Next() {
							if rows == 0 {
								fb = time.Since(start)
							}
							rows += int64(len(st.Batch()))
						}
						err = st.Err()
						total = time.Since(start)
						if rows == 0 {
							fb = total // empty answer: first batch IS the tail
						}
					}
					if measure {
						if err != nil {
							stats[i].errs++
						} else {
							stats[i].lat = append(stats[i].lat, total)
							stats[i].fbLat = append(stats[i].fbLat, fb)
							stats[i].respRows += rows
							stats[i].strRows += st.StreamedRows()
							stats[i].bytes += st.WireBytes()
							stats[i].streamed = true
						}
					} else if err != nil {
						log.Printf("warmup error (client %d): %v", i, err)
					}
					if st != nil {
						st.Close()
					}
					continue
				}
				start := time.Now()
				res, err := cl.Query(ctx, q)
				if measure {
					if err != nil {
						stats[i].errs++
					} else {
						stats[i].lat = append(stats[i].lat, time.Since(start))
						stats[i].bytes += res.WireBytes
						stats[i].respRows += int64(len(res.Rows))
						if res.Streamed {
							stats[i].streamed = true
						}
					}
				} else if err != nil {
					log.Printf("warmup error (client %d): %v", i, err)
				}
			}
		}(i)
	}

	time.Sleep(warmup)
	close(measuring)
	t0 := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0)

	var all, fbAll []time.Duration
	var bytes, respRows, strRows int64
	var streamed bool
	errs := 0
	for _, s := range stats {
		all = append(all, s.lat...)
		fbAll = append(fbAll, s.fbLat...)
		bytes += s.bytes
		respRows += s.respRows
		strRows += s.strRows
		errs += s.errs
		streamed = streamed || s.streamed
	}
	var fo client.Counters
	for _, cl := range conns {
		c := cl.Counters()
		fo.Attempts += c.Attempts
		fo.Retries += c.Retries
		fo.Failovers += c.Failovers
		fo.DialErrors += c.DialErrors
		fo.Refreshes += c.Refreshes
	}
	if len(all) == 0 {
		log.Fatal("no queries completed in the measurement window")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		idx := int(p / 100 * float64(len(all)-1))
		return all[idx].Round(time.Microsecond)
	}
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	qps := float64(len(all)) / elapsed.Seconds()

	fmt.Printf("\n--- orchestra-load: %d clients x %s against %d endpoint(s), codec %s ---\n",
		clients, elapsed.Round(time.Millisecond), len(endpoints), codec)
	fmt.Printf("queries:    %d ok, %d errors\n", len(all), errs)
	fmt.Printf("throughput: %.0f queries/s\n", qps)
	fmt.Printf("latency:    mean %s  p50 %s  p90 %s  p99 %s  max %s\n",
		(sum / time.Duration(len(all))).Round(time.Microsecond),
		pct(50), pct(90), pct(99), all[len(all)-1].Round(time.Microsecond))
	fmt.Printf("wire:       %d bytes/query, %.1f rows/query, %.2f MB/s\n",
		bytes/int64(len(all)), float64(respRows)/float64(len(all)),
		float64(bytes)/1e6/elapsed.Seconds())
	fb := latSummary("first_batch", fbAll)
	if fb != nil {
		fmt.Printf("firstbatch: p50 %dus  p95 %dus  p99 %dus (full-result p50 %s; %d rows streamed during execution)\n",
			fb.P50Us, fb.P95Us, fb.P99Us, pct(50), strRows)
	}
	if fo.Retries > 0 || fo.Failovers > 0 || fo.DialErrors > 0 {
		fmt.Printf("failover:   %d retries, %d failovers, %d dial errors (of %d attempts)\n",
			fo.Retries, fo.Failovers, fo.DialErrors, fo.Attempts)
	}

	for _, addr := range endpoints {
		printServerStats(ctx, addr)
	}

	return &benchRecord{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Codec:        codec,
		Streamed:     streamed,
		Endpoints:    len(endpoints),
		Clients:      clients,
		DurationS:    elapsed.Seconds(),
		QueriesOK:    len(all),
		Errors:       errs,
		QPS:          qps,
		MeanUs:       (sum / time.Duration(len(all))).Microseconds(),
		P50Us:        pct(50).Microseconds(),
		P90Us:        pct(90).Microseconds(),
		P95Us:        pct(95).Microseconds(),
		P99Us:        pct(99).Microseconds(),
		MaxUs:        all[len(all)-1].Microseconds(),
		BytesPerQ:    bytes / int64(len(all)),
		RowsPerQ:     float64(respRows) / float64(len(all)),
		WireMBps:     float64(bytes) / 1e6 / elapsed.Seconds(),
		Phases:       []phaseLat{*latSummary("query", all)},
		FirstBatch:   fb,
		StreamedRows: strRows,
		Failover:     fo,
	}
}

// appendBenchRecord merges the run into the {"runs": [...]} file at path.
func appendBenchRecord(path string, rec any) error {
	var doc struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &doc) // unreadable history: start over
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	doc.Runs = append(doc.Runs, raw)
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// printServerStats fetches and prints one endpoint's own counters.
func printServerStats(ctx context.Context, addr string) {
	cl, err := client.Dial(addr)
	if err != nil {
		log.Printf("status %s: %v", addr, err)
		return
	}
	defer cl.Close()
	st, err := cl.Status(ctx)
	if err != nil {
		log.Printf("status %s: %v", addr, err)
		return
	}
	q := st.Ops["query"]
	var mean int64
	if q.Count > 0 {
		mean = q.TotalUs / int64(q.Count)
	}
	fmt.Printf("server %s (node %s): %d queries (%d errors), mean %dus, max %dus, peak in-flight %d/%d\n",
		addr, st.NodeID, q.Count, q.Errors, mean, q.MaxUs,
		st.PeakInFlightQueries, st.MaxConcurrentQueries)
	if r := st.Replication; r != nil {
		fmt.Printf("  replication: lag %d (max across peers), %d records caught up, %d state transfers, %d anti-entropy repairs\n",
			r.MaxLag, r.CatchUpRecords, r.StateTransfers, r.AntiEntropyRepairs)
	}
	if d := st.Durability; d != nil {
		fmt.Printf("  durability: seq %d, %d wal segments (%d bytes), last checkpoint stall %dus\n",
			d.Seq, d.WALSegments, d.WALBytes, d.LastCheckpointStallUs)
	}
}
