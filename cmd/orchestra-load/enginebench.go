package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"orchestra"
	"orchestra/internal/tuple"
)

// engineBenchRecord is one engine-scan run's machine-readable result,
// appended to BENCH_engine.json. Unlike the wire benchmark it bypasses
// the serving stack entirely: queries run on an embedded single-node
// cluster pinned to one core, so the numbers isolate the engine scan
// path (B-tree pass, predicate, decode, ship) from codec and transport.
type engineBenchRecord struct {
	Timestamp     string  `json:"timestamp"`
	Workload      string  `json:"workload"`
	Note          string  `json:"note,omitempty"`
	Rows          int     `json:"rows"`
	ResultRows    int     `json:"resultrows"`
	DurationS     float64 `json:"duration_s"`
	Queries       int     `json:"queries"`
	QPS           float64 `json:"qps"`
	ScanRowsPerS  float64 `json:"scan_rows_per_s"`
	OutRowsPerS   float64 `json:"out_rows_per_s"`
	MeanUs        int64   `json:"mean_us"`
	P50Us         int64   `json:"p50_us"`
	P95Us         int64   `json:"p95_us"`
	P99Us         int64   `json:"p99_us"`
	ProvenanceQPS float64 `json:"provenance_qps,omitempty"`
	// Publish throughput of the seed phase, in-memory vs durable
	// (WAL + group-commit fsync per publish), and their ratio — the
	// measured cost of crash-safe acknowledged publishes.
	SeedRowsPerS           float64 `json:"seed_rows_per_s,omitempty"`
	DurableSeedRowsPerS    float64 `json:"durable_seed_rows_per_s,omitempty"`
	DurablePublishOverhead float64 `json:"durable_publish_overhead,omitempty"`
}

// seedLoad publishes rows into c's "load" relation in 1000-row batches
// and returns the elapsed publish time.
func seedLoad(c *orchestra.Cluster, rows int) time.Duration {
	if err := c.CreateRelation(orchestra.NewSchema("load", "k:string", "grp:int", "v:int").Key("k")); err != nil {
		log.Fatal(err)
	}
	const batch = 1000
	t0 := time.Now()
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		b := make([]tuple.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			b = append(b, tuple.Row{tuple.S(fmt.Sprintf("k%06d", i)), tuple.I(int64(i % 17)), tuple.I(int64(i))})
		}
		if _, err := c.PublishTyped(0, "load", b); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(t0)
}

// durableSeedRate runs the same seed against a single durable node
// (SyncAlways) in a throwaway directory and returns rows/s — the
// denominator of the durable-publish overhead ratio.
func durableSeedRate(rows int) float64 {
	dir, err := os.MkdirTemp("", "orchestra-bench-durable")
	if err != nil {
		log.Printf("engine bench: no temp dir for durable seed: %v", err)
		return 0
	}
	defer os.RemoveAll(dir)
	c, err := orchestra.NewCluster(1,
		orchestra.WithDataDir(dir), orchestra.WithSyncMode(orchestra.SyncAlways))
	if err != nil {
		log.Printf("engine bench: durable cluster: %v", err)
		return 0
	}
	defer c.Shutdown()
	elapsed := seedLoad(c, rows)
	return float64(rows) / elapsed.Seconds()
}

// runEngineBench drives the scan-heavy engine workload: a single-node
// embedded cluster, GOMAXPROCS(1), one closed loop of filtered scans
// over a rows-sized relation. resultRows bounds the answer per query
// via a range predicate on a non-key column, so the full distributed
// scan machinery runs (index side, ID shipment, data pass, filter,
// project, ship) with nothing hidden behind a covering shortcut.
func runEngineBench(rows, resultRows int, duration time.Duration, note, out string) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	if resultRows <= 0 || resultRows > rows {
		resultRows = rows
	}
	c, err := orchestra.NewCluster(1)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	seedElapsed := seedLoad(c, rows)
	seedRate := float64(rows) / seedElapsed.Seconds()
	durableRate := durableSeedRate(rows)

	q := fmt.Sprintf("SELECT k, grp, v FROM load WHERE v >= 0 AND v < %d", resultRows)
	if res, err := c.Query(q); err != nil {
		log.Fatal(err)
	} else if len(res.Rows) != resultRows {
		log.Fatalf("engine bench: query answered %d rows, want %d", len(res.Rows), resultRows)
	}

	var lat []time.Duration
	t0 := time.Now()
	for time.Since(t0) < duration {
		qs := time.Now()
		if _, err := c.Query(q); err != nil {
			log.Fatal(err)
		}
		lat = append(lat, time.Since(qs))
	}
	elapsed := time.Since(t0)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(p float64) time.Duration { return lat[int(p/100*float64(len(lat)-1))] }
	qps := float64(len(lat)) / elapsed.Seconds()

	// A short provenance-mode pass, so the recovery-support overhead on
	// the scan path stays visible across PRs.
	provN := 0
	pt0 := time.Now()
	for time.Since(pt0) < duration/4 {
		if _, err := c.QueryOpts(q, orchestra.QueryOptions{Provenance: true}); err != nil {
			log.Fatal(err)
		}
		provN++
	}
	provQPS := float64(provN) / time.Since(pt0).Seconds()

	rec := &engineBenchRecord{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Workload:      "engine-scan",
		Note:          note,
		Rows:          rows,
		ResultRows:    resultRows,
		DurationS:     elapsed.Seconds(),
		Queries:       len(lat),
		QPS:           qps,
		ScanRowsPerS:  qps * float64(rows),
		OutRowsPerS:   qps * float64(resultRows),
		MeanUs:        (sum / time.Duration(len(lat))).Microseconds(),
		P50Us:         pct(50).Microseconds(),
		P95Us:         pct(95).Microseconds(),
		P99Us:         pct(99).Microseconds(),
		ProvenanceQPS: provQPS,
		SeedRowsPerS:  seedRate,
	}
	if durableRate > 0 {
		rec.DurableSeedRowsPerS = durableRate
		rec.DurablePublishOverhead = seedRate / durableRate
	}
	fmt.Printf("\n--- orchestra-load engine-scan: %d rows, %d result rows, 1 core ---\n", rows, resultRows)
	fmt.Printf("queries:    %d in %s (%.0f/s)\n", len(lat), elapsed.Round(time.Millisecond), qps)
	fmt.Printf("scan rate:  %.0f scanned rows/s, %.0f result rows/s\n", rec.ScanRowsPerS, rec.OutRowsPerS)
	fmt.Printf("latency:    mean %s  p50 %s  p99 %s\n",
		(sum / time.Duration(len(lat))).Round(time.Microsecond),
		pct(50).Round(time.Microsecond), pct(99).Round(time.Microsecond))
	fmt.Printf("provenance: %.0f queries/s\n", provQPS)
	if durableRate > 0 {
		fmt.Printf("publish:    %.0f rows/s in-memory, %.0f rows/s durable (%.2fx overhead)\n",
			seedRate, durableRate, seedRate/durableRate)
	}

	if out != "" {
		if err := appendBenchRecord(out, rec); err != nil {
			log.Printf("orchestra-load: write %s: %v", out, err)
		} else {
			log.Printf("run recorded in %s", out)
		}
	}
}
