// Command orchestra-node runs one ORCHESTRA storage/query node over real
// TCP — a laptop-scale multi-process deployment of the same stack the
// simulated experiments exercise. Every process is given the full member
// list (the complete routing table of §III-B); identities are the listen
// addresses.
//
// Start a 3-node cluster in three shells:
//
//	orchestra-node -listen 127.0.0.1:7001 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	orchestra-node -listen 127.0.0.1:7002 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//	orchestra-node -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//
// Then drive any node through its REPL on stdin:
//
//	create inv item:string qty:int
//	publish inv bolt 90
//	publish inv nut 120
//	query SELECT item, qty FROM inv WHERE qty > 100
//
// With -serve ADDR the node additionally exposes the wire protocol of
// internal/server on ADDR, so external processes can create, publish,
// and query through the orchestra/client package (or cmd/orchestra-load)
// instead of stdin. -maxq bounds concurrent query executions on that
// endpoint.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/kvstore"
	"orchestra/internal/obs"
	"orchestra/internal/optimizer"
	"orchestra/internal/ring"
	"orchestra/internal/server"
	"orchestra/internal/sql"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
	"orchestra/internal/vstore"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "listen address (also this node's identity)")
	peers := flag.String("peers", "", "comma-separated full member list (must include -listen)")
	replication := flag.Int("replication", 3, "total copies of each data item")
	dataDir := flag.String("data", "", "persist the local store to this directory (default: memory)")
	syncMode := flag.String("sync", "always", "with -data: fsync policy — always (group-commit fsync per write), interval (periodic), never (OS page cache)")
	pingEvery := flag.Duration("ping", 2*time.Second, "hung-peer probe interval (0 disables)")
	serveAddr := flag.String("serve", "", "also serve the client wire protocol on this address")
	advertise := flag.String("advertise", "", "served endpoint: address advertised to clients in health responses (default: -serve)")
	servePeers := flag.String("serve-peers", "", "served endpoint: comma-separated client addresses of the whole deployment to advertise for failover")
	maxQ := flag.Int("maxq", 0, "served endpoint: max concurrent query executions (0 = 2×GOMAXPROCS)")
	opsAddr := flag.String("ops", "", "served endpoint: ops HTTP address for /metrics, /debug/vars, /debug/pprof (requires -serve)")
	slowMs := flag.Int64("slowms", 0, "served endpoint: slow-query log threshold in ms (0 = 250ms default, negative disables)")
	repairEvery := flag.Duration("repair", 30*time.Second, "anti-entropy repair interval: periodically reconcile with one replica peer and pull any missed WAL suffix (0 disables)")
	retainBytes := flag.Int64("retain", 0, "with -data: archived WAL bytes kept for replica catch-up (0 = 32 MiB default)")
	flag.Parse()

	members := strings.Split(*peers, ",")
	ids := make([]ring.NodeID, 0, len(members))
	self := false
	for _, m := range members {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if m == *listen {
			self = true
		}
		ids = append(ids, ring.NodeID(m))
	}
	if !self {
		log.Fatalf("orchestra-node: -peers must include the -listen address %s", *listen)
	}

	table, err := ring.New(ids, ring.Balanced, *replication)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := transport.ListenTCP(*listen)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	store := kvstore.NewMemory()
	if *dataDir != "" {
		var mode kvstore.SyncMode
		switch *syncMode {
		case "always":
			mode = kvstore.SyncAlways
		case "interval":
			mode = kvstore.SyncInterval
		case "never":
			mode = kvstore.SyncNever
		default:
			log.Fatalf("orchestra-node: -sync must be always, interval, or never (got %q)", *syncMode)
		}
		t0 := time.Now()
		store, err = kvstore.Open(*dataDir, kvstore.Options{Sync: mode, Registry: reg, RetainBytes: *retainBytes})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		if d, ok := store.DurabilityStats(); ok {
			log.Printf("recovered %s: epoch %d, generation %d, %d wal records replayed in %s (sync=%s)",
				*dataDir, d.Epoch, d.Generation, d.ReplayedRecords,
				time.Since(t0).Round(time.Millisecond), mode)
		}
	}
	node := cluster.NewNode(ep, store, table, cluster.Config{Replication: *replication})
	eng := engine.New(node)
	node.Gossip().Start(time.Second)
	if *pingEvery > 0 {
		node.StartPinger(*pingEvery, 3**pingEvery)
	}
	node.OnPeerDown(func(id ring.NodeID) {
		log.Printf("peer down: %s", id)
	})
	defer node.Close()
	if *repairEvery > 0 && len(ids) > 1 {
		// One immediate pass catches a rejoining node up from its peers'
		// retained WAL (or a state transfer when they truncated past its
		// position); the background loop then keeps replicas converged.
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			if err := node.Repair(ctx); err != nil {
				log.Printf("startup repair (will retry in background): %v", err)
			} else if st := node.ReplStats(); st.CatchUpRecords > 0 || st.StateTransfers > 0 {
				log.Printf("caught up from peers: %d records shipped, %d state transfers, %s",
					st.CatchUpRecords, st.StateTransfers, time.Duration(st.LastCatchUpUs)*time.Microsecond)
			}
		}()
		node.StartRepair(*repairEvery)
	}

	if *serveAddr != "" {
		srv, err := server.Start(*serveAddr, server.NewNodeBackend(node, eng),
			server.Config{
				MaxConcurrentQueries: *maxQ,
				SlowQueryThreshold:   time.Duration(*slowMs) * time.Millisecond,
				Registry:             reg,
				Peers:                func() []string { return advertisedPeers(*advertise, *serveAddr, *servePeers) },
			})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving clients on %s (max %d concurrent queries)",
			srv.Addr(), srv.Stats().MaxConcurrentQueries)
		if *opsAddr != "" {
			a, err := srv.ServeOps(*opsAddr)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("serving ops on http://%s (/metrics, /debug/vars, /debug/pprof)", a)
		}
		// SIGTERM drains: refuse new work with a re-routable error,
		// finish what is in flight, then exit — a rolling restart loses
		// nothing that was acknowledged.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		go func() {
			s := <-sig
			log.Printf("%s: draining served endpoint", s)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("drain severed in-flight work: %v", err)
				os.Exit(1)
			}
			log.Printf("drained clean")
			os.Exit(0)
		}()
	} else if *opsAddr != "" {
		log.Fatalf("orchestra-node: -ops requires -serve")
	}

	log.Printf("node %s up; %d members, replication %d", *listen, len(ids), *replication)
	repl(node, eng)
}

// advertisedPeers builds the client-facing member list this endpoint
// advertises: its own advertised address plus the deployment-wide list,
// deduplicated, so any one reachable endpoint teaches a smart client
// every endpoint it may fail over to.
func advertisedPeers(advertise, serveAddr, servePeers string) []string {
	self := advertise
	if self == "" {
		self = serveAddr
	}
	seen := make(map[string]struct{})
	var out []string
	for _, a := range append([]string{self}, strings.Split(servePeers, ",")...) {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if _, ok := seen[a]; ok {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// repl drives the node interactively: create / publish / query / epoch.
func repl(node *cluster.Node, eng *engine.Engine) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("commands: create <rel> <col:type>... | publish <rel> <vals>... | query <sql> | epoch | quit")
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		switch fields[0] {
		case "quit", "exit":
			cancel()
			return
		case "epoch":
			fmt.Println(node.Gossip().Current())
		case "create":
			if len(fields) < 3 {
				fmt.Println("usage: create <rel> <col:type>...")
				break
			}
			if err := createRelation(ctx, node, fields[1], fields[2:]); err != nil {
				fmt.Println("error:", err)
			}
		case "publish":
			if len(fields) < 3 {
				fmt.Println("usage: publish <rel> <vals>...")
				break
			}
			if err := publishRow(ctx, node, fields[1], fields[2:]); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("epoch", node.Gossip().Current())
			}
		case "query":
			sqlText := strings.TrimSpace(strings.TrimPrefix(line, "query"))
			if err := runQuery(ctx, node, eng, sqlText); err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Println("unknown command:", fields[0])
		}
		cancel()
	}
}

func createRelation(ctx context.Context, node *cluster.Node, rel string, colSpecs []string) error {
	var cols []tuple.Column
	for _, c := range colSpecs {
		parts := strings.SplitN(c, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad column %q", c)
		}
		var t tuple.Type
		switch parts[1] {
		case "int":
			t = tuple.Int64
		case "float":
			t = tuple.Float64
		case "string":
			t = tuple.String
		default:
			return fmt.Errorf("bad type %q", parts[1])
		}
		cols = append(cols, tuple.Column{Name: parts[0], Type: t})
	}
	s, err := tuple.NewSchema(rel, cols, cols[0].Name)
	if err != nil {
		return err
	}
	return node.CreateRelation(ctx, s)
}

func publishRow(ctx context.Context, node *cluster.Node, rel string, vals []string) error {
	cat, err := node.GetCatalog(ctx, rel)
	if err != nil {
		return err
	}
	if len(vals) != cat.Schema.Arity() {
		return fmt.Errorf("want %d values", cat.Schema.Arity())
	}
	row := make(tuple.Row, len(vals))
	for i, v := range vals {
		switch cat.Schema.Columns[i].Type {
		case tuple.Int64:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return err
			}
			row[i] = tuple.I(n)
		case tuple.Float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return err
			}
			row[i] = tuple.F(f)
		default:
			row[i] = tuple.S(v)
		}
	}
	_, err = node.Publish(ctx, rel, []vstore.Update{{Op: vstore.OpInsert, Row: row}})
	return err
}

func runQuery(ctx context.Context, node *cluster.Node, eng *engine.Engine, sqlText string) error {
	q, err := sql.Parse(sqlText)
	if err != nil {
		return err
	}
	cat := &nodeCatalog{ctx: ctx, node: node}
	plan, info, err := optimizer.Build(q, cat, optimizer.Environment{Nodes: node.Table().Size()})
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := eng.Run(ctx, plan, engine.Options{Recovery: engine.RecoverRestart})
	if err != nil {
		return err
	}
	for _, r := range res.Rows {
		fmt.Println(" ", r)
	}
	fmt.Printf("-- %d rows in %s (cost est %.6fs, epoch %d)\n",
		len(res.Rows), time.Since(start).Round(time.Microsecond), info.Cost, res.Epoch)
	return nil
}

// nodeCatalog resolves schemas from the cluster's replicated catalogs.
type nodeCatalog struct {
	ctx  context.Context
	node *cluster.Node
}

func (c *nodeCatalog) Schema(table string) (*tuple.Schema, error) {
	cat, err := c.node.GetCatalog(c.ctx, table)
	if err != nil {
		return nil, err
	}
	return cat.Schema, nil
}

func (c *nodeCatalog) Stats(string) optimizer.TableStats { return optimizer.TableStats{} }
