// Command tpchgen emits the TPC-H tables produced by the built-in dbgen
// substitute (paper §VI-A) as pipe-delimited text, one table per call or
// all tables to a directory.
//
// Usage:
//
//	tpchgen -sf 0.01 -table lineitem            # one table to stdout
//	tpchgen -sf 0.01 -dir /tmp/tpch             # all tables to files
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"orchestra/internal/tpch"
	"orchestra/internal/tuple"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	table := flag.String("table", "", "single table to emit to stdout")
	dir := flag.String("dir", "", "emit every table to <dir>/<table>.tbl")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	data := tpch.Generate(*sf, *seed)
	if *table != "" {
		rows, ok := data[*table]
		if !ok {
			log.Fatalf("tpchgen: unknown table %q", *table)
		}
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		writeRows(w, rows)
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tpchgen: need -table or -dir; tables:")
		for _, s := range tpch.Schemas() {
			fmt.Fprintf(os.Stderr, "  %-10s %7d rows at sf=%g\n",
				s.Relation, len(data[s.Relation]), *sf)
		}
		os.Exit(2)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, rows := range data {
		f, err := os.Create(filepath.Join(*dir, name+".tbl"))
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		writeRows(w, rows)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", f.Name(), len(rows))
	}
}

func writeRows(w *bufio.Writer, rows []tuple.Row) {
	for _, r := range rows {
		for i, v := range r {
			if i > 0 {
				w.WriteByte('|')
			}
			w.WriteString(v.String())
		}
		w.WriteByte('\n')
	}
}
