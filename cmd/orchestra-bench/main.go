// Command orchestra-bench regenerates the paper's evaluation figures
// (§VI): it runs each experiment's sweep on a simulated local cluster and
// prints the same rows/series the paper plots.
//
// Usage:
//
//	orchestra-bench -figure fig7            # one figure, laptop scale
//	orchestra-bench -figure all -v          # every figure
//	orchestra-bench -figure fig10 -paper    # paper-scale parameters (slow)
//	orchestra-bench -figure all -markdown   # Markdown tables (EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"orchestra/internal/bench"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure id or 'all' (ids: fig2 fig7..fig21 lat ovh fdet)")
		paper    = flag.Bool("paper", false, "use paper-scale parameters (much slower)")
		verbose  = flag.Bool("v", false, "log progress")
		markdown = flag.Bool("markdown", false, "emit Markdown tables")
		stTuples = flag.Int("st-tuples", 0, "override STBenchmark tuples/relation")
		sf       = flag.Float64("sf", 0, "override TPC-H scale factor")
	)
	flag.Parse()

	cfg := bench.Config{Verbose: *verbose, Out: os.Stderr}
	if *paper {
		cfg.STBTuples = 800_000
		cfg.TPCHScale = 0.5
		cfg.Nodes = []int{1, 2, 4, 8, 16}
	}
	if *stTuples > 0 {
		cfg.STBTuples = *stTuples
	}
	if *sf > 0 {
		cfg.TPCHScale = *sf
	}

	ids := []string{*figure}
	if *figure == "all" {
		ids = bench.FigureIDs()
	}
	start := time.Now()
	for _, id := range ids {
		fig, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orchestra-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Print(bench.Markdown(fig))
		} else {
			bench.Render(os.Stdout, fig)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "# total %s\n", time.Since(start).Round(time.Millisecond))
	}
}
