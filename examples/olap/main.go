// OLAP: run the paper's TPC-H workload (§VI-A) over a distributed cluster
// — the five single-block queries (Q1, Q3, Q5, Q6, Q10), with timing and
// byte-accurate network traffic per query.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"orchestra"
	"orchestra/internal/tpch"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	flag.Parse()

	c, err := orchestra.NewCluster(*nodes)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	fmt.Printf("generating TPC-H at scale factor %g…\n", *sf)
	data := tpch.Generate(*sf, 42)
	loadStart := time.Now()
	total := 0
	for _, s := range tpch.Schemas() {
		if err := c.CreateRelationSchema(s); err != nil {
			log.Fatal(err)
		}
		if _, err := c.PublishTyped(0, s.Relation, data[s.Relation]); err != nil {
			log.Fatal(err)
		}
		total += len(data[s.Relation])
	}
	fmt.Printf("published %d tuples across 8 tables in %s (epoch %d)\n\n",
		total, time.Since(loadStart).Round(time.Millisecond), c.CurrentEpoch())

	fmt.Printf("%-4s  %10s  %10s  %8s  %s\n", "qry", "time", "traffic", "rows", "first row")
	for _, q := range tpch.Queries() {
		// Warm run (caches, JIT-equivalent), as the paper measures.
		if _, err := c.Query(q.SQL); err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		c.ResetNetworkStats()
		start := time.Now()
		res, err := c.Query(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		elapsed := time.Since(start)
		st := c.NetworkStats()
		first := "-"
		if len(res.Rows) > 0 {
			first = res.Rows[0].String()
			if len(first) > 48 {
				first = first[:45] + "..."
			}
		}
		fmt.Printf("%-4s  %10s  %8.2fMB  %8d  %s\n",
			q.Name, elapsed.Round(time.Microsecond), float64(st.TotalBytes)/(1<<20),
			len(res.Rows), first)
	}
}
