// Biosharing: the paper's motivating scenario (§I) — life-science groups
// with autonomous databases and different schemas collaborating through
// the CDSS publish/import cycle. Two labs publish gene annotations with a
// conflicting entry; a third lab imports both feeds through schema
// mappings (update exchange) and reconciliation resolves the disagreement
// by peer priority.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"orchestra/internal/cdss"
	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/transport"
	"orchestra/internal/tuple"
)

func main() {
	// A shared storage/query fabric contributed by the participants' own
	// machines — no dedicated server (§I).
	local, err := cluster.NewLocal(5, cluster.Config{Replication: 3}, transport.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer local.Shutdown()
	engines := make([]*engine.Engine, 5)
	for i, n := range local.Nodes() {
		engines[i] = engine.New(n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	geneSchema := tuple.MustSchema("genes",
		[]tuple.Column{
			{Name: "gene", Type: tuple.String},
			{Name: "organism", Type: tuple.String},
			{Name: "function", Type: tuple.String},
		}, "gene")

	// Two annotating labs; the curated lab is trusted more.
	fieldLab := cdss.NewParticipant("fieldlab", local.Node(0), engines[0], 1)
	curated := cdss.NewParticipant("curated", local.Node(1), engines[1], 5)
	fieldLab.DefineLocal(geneSchema)
	curated.DefineLocal(geneSchema)

	// Each lab edits only its local DBMS, then publishes its update log.
	apply := func(p *cdss.Participant, gene, org, fn string) {
		if err := p.Apply("genes", cdss.OpInsert,
			tuple.Row{tuple.S(gene), tuple.S(org), tuple.S(fn)}); err != nil {
			log.Fatal(err)
		}
	}
	apply(fieldLab, "brca1", "human", "unknown repair role")
	apply(fieldLab, "myc", "human", "transcription factor")
	apply(curated, "brca1", "human", "double-strand break repair")
	apply(curated, "tp53", "human", "tumor suppressor")

	for _, p := range []*cdss.Participant{fieldLab, curated} {
		e, err := p.Publish(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s published %s updates (epoch %d)\n", p.Name, "its", e)
	}

	// The consumer lab has a different local schema: it keeps only gene
	// and function, tagged with the providing source.
	consumer := cdss.NewParticipant("consumer", local.Node(2), engines[2], 0)
	consumer.DefineLocal(tuple.MustSchema("annotations",
		[]tuple.Column{
			{Name: "gene", Type: tuple.String},
			{Name: "function", Type: tuple.String},
		}, "gene"))

	// Schema mappings: update exchange runs these as distributed queries
	// over a consistent snapshot of the published state (§II).
	consumer.AddMapping(cdss.Mapping{
		Peer:   "fieldlab",
		Target: "annotations",
		SQL:    "SELECT gene, function FROM fieldlab_genes WHERE organism = 'human'",
	})
	consumer.AddMapping(cdss.Mapping{
		Peer:   "curated",
		Target: "annotations",
		SQL:    "SELECT gene, function FROM curated_genes WHERE organism = 'human'",
	})

	priorities := map[string]int{"fieldlab": 1, "curated": 5}
	rep, err := consumer.Import(ctx, priorities)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimport at epoch %d: %d rows installed, %d conflict(s) resolved\n",
		rep.Epoch, rep.Imported, len(rep.Conflicts))
	for _, c := range rep.Conflicts {
		fmt.Printf("  conflict on %s: kept %q from %s, rejected %d assertion(s)\n",
			c.Winner.Row[0].Str, c.Winner.Row[1].Str, c.Winner.Peer, len(c.Rejected))
	}

	fmt.Println("\nconsumer's local instance after reconciliation:")
	for _, r := range consumer.Rows("annotations") {
		fmt.Printf("  %-6s → %s\n", r[0].Str, r[1].Str)
	}

	// A later correction by the curated lab propagates on the next cycle.
	if err := curated.Apply("genes", cdss.OpUpdate,
		tuple.Row{tuple.S("tp53"), tuple.S("human"), tuple.S("guardian of the genome")}); err != nil {
		log.Fatal(err)
	}
	if _, err := curated.Publish(ctx); err != nil {
		log.Fatal(err)
	}
	if _, err := consumer.Import(ctx, priorities); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter the curated lab's correction and a second import:")
	for _, r := range consumer.Rows("annotations") {
		fmt.Printf("  %-6s → %s\n", r[0].Str, r[1].Str)
	}
}
