// Failover: demonstrate reliable query execution under node failure — the
// paper's headline capability (§V). A node is killed in the middle of a
// distributed join; the query completes with the exact answer set anyway,
// first by incremental recomputation of only the lost state (§V-D), then
// by full restart for comparison. A third act stops a durable cluster
// entirely and restarts it from its write-ahead logs and snapshots: the
// published data, schemas, and epoch all survive process death.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"orchestra"
)

const query = `
SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue
FROM orders, customers
WHERE orders.cust = customers.id
GROUP BY region
ORDER BY region`

func load(c *orchestra.Cluster) {
	check(c.CreateRelation(
		orchestra.NewSchema("customers", "id:int", "region:string").Key("id")))
	check(c.CreateRelation(
		orchestra.NewSchema("orders", "oid:int", "cust:int", "amount:float").Key("oid")))

	regions := []string{"east", "west", "north", "south"}
	var customers orchestra.Rows
	for i := 0; i < 400; i++ {
		customers = append(customers, orchestra.Row{i, regions[i%len(regions)]})
	}
	var orders orchestra.Rows
	for i := 0; i < 8000; i++ {
		orders = append(orders, orchestra.Row{i, i % 400, float64(i%97) + 0.5})
	}
	_, err := c.Publish("customers", customers)
	check(err)
	_, err = c.Publish("orders", orders)
	check(err)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func run(mode orchestra.RecoveryMode, label string) {
	c, err := orchestra.NewCluster(6)
	check(err)
	defer c.Shutdown()
	load(c)

	// Reference answer on the healthy cluster.
	ref, err := c.Query(query)
	check(err)

	// Kill a node shortly after the query starts.
	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Kill(3)
		fmt.Printf("  [%s] node 3 killed mid-query\n", label)
	}()
	start := time.Now()
	res, err := c.QueryOpts(query, orchestra.QueryOptions{Recovery: mode})
	check(err)
	elapsed := time.Since(start)

	// The answer must be complete and duplicate-free despite the failure.
	if len(res.Rows) != len(ref.Rows) {
		log.Fatalf("[%s] row count changed after failure: %d vs %d",
			label, len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if !res.Rows[i].Equal(ref.Rows[i]) {
			log.Fatalf("[%s] row %d differs: %v vs %v", label, i, res.Rows[i], ref.Rows[i])
		}
	}
	fmt.Printf("  [%s] completed in %s (phases=%d, restarts=%d) — exact answer preserved\n",
		label, elapsed.Round(time.Millisecond), res.Phases, res.Restarts)
	for _, row := range res.Rows {
		fmt.Printf("    %-6s %6d orders  %10.2f revenue\n",
			row[0].Str, row[1].AsInt(), row[2].AsFloat())
	}
}

// runDurable publishes into a durable cluster, stops every node, then
// brings the whole cluster back from disk and re-runs the query: the
// answer, the schemas, and the epoch must all survive. (The crash-stop
// variant of this — SIGKILL instead of an orderly stop — runs in the
// repo's kill-and-restart e2e test; group-commit fsyncs make the two
// equivalent for acknowledged publishes.)
func runDurable() {
	dir, err := os.MkdirTemp("", "orchestra-failover")
	check(err)
	defer os.RemoveAll(dir)

	c, err := orchestra.NewCluster(6,
		orchestra.WithDataDir(dir), orchestra.WithSyncMode(orchestra.SyncAlways))
	check(err)
	load(c)
	ref, err := c.Query(query)
	check(err)
	epoch := c.CurrentEpoch()
	c.Shutdown()
	fmt.Printf("  [durable] cluster stopped at epoch %d; restarting from %s\n", epoch, dir)

	t0 := time.Now()
	c2, err := orchestra.NewCluster(6, orchestra.WithDataDir(dir))
	check(err)
	defer c2.Shutdown()
	if got := c2.CurrentEpoch(); got < epoch {
		log.Fatalf("[durable] recovered epoch %d < published epoch %d", got, epoch)
	}
	res, err := c2.Query(query)
	check(err)
	if len(res.Rows) != len(ref.Rows) {
		log.Fatalf("[durable] row count changed across restart: %d vs %d",
			len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if !res.Rows[i].Equal(ref.Rows[i]) {
			log.Fatalf("[durable] row %d differs: %v vs %v", i, res.Rows[i], ref.Rows[i])
		}
	}
	if d, ok := c2.DurabilityStats(0); ok {
		fmt.Printf("  [durable] recovered in %s (node 0 replayed %d wal records) — answer identical\n",
			time.Since(t0).Round(time.Millisecond), d.ReplayedRecords)
	}
}

func main() {
	fmt.Println("incremental recomputation (§V-D: purge tainted state, replay, restart leaves):")
	run(orchestra.RecoverIncremental, "incremental")

	fmt.Println("\nfull restart over the survivors:")
	run(orchestra.RecoverRestart, "restart")

	fmt.Println("\ndurable stores: stop the whole cluster, restart it from disk:")
	runDurable()
}
