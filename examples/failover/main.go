// Failover: demonstrate reliable query execution under node failure — the
// paper's headline capability (§V). A node is killed in the middle of a
// distributed join; the query completes with the exact answer set anyway,
// first by incremental recomputation of only the lost state (§V-D), then
// by full restart for comparison. A third act stops a durable cluster
// entirely and restarts it from its write-ahead logs and snapshots: the
// published data, schemas, and epoch all survive process death. A fourth
// act moves the failure to the wire: two served endpoints are fronted by
// fault-injecting TCP proxies, one endpoint is degraded and then
// hard-reset mid-workload, and the smart client completes every
// idempotent query anyway by retrying onto the surviving endpoint. The
// fifth act is the replica-repair story: one durable replica is killed,
// a backlog is published while it is down, and on restart it catches up
// by replaying the WAL delta shipped from its peers — no state transfer,
// no rebalance — then serves the exact answer.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"orchestra"
	"orchestra/client"
	"orchestra/internal/netfault"
)

const query = `
SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue
FROM orders, customers
WHERE orders.cust = customers.id
GROUP BY region
ORDER BY region`

func load(c *orchestra.Cluster) {
	check(c.CreateRelation(
		orchestra.NewSchema("customers", "id:int", "region:string").Key("id")))
	check(c.CreateRelation(
		orchestra.NewSchema("orders", "oid:int", "cust:int", "amount:float").Key("oid")))

	regions := []string{"east", "west", "north", "south"}
	var customers orchestra.Rows
	for i := 0; i < 400; i++ {
		customers = append(customers, orchestra.Row{i, regions[i%len(regions)]})
	}
	var orders orchestra.Rows
	for i := 0; i < 8000; i++ {
		orders = append(orders, orchestra.Row{i, i % 400, float64(i%97) + 0.5})
	}
	_, err := c.Publish("customers", customers)
	check(err)
	_, err = c.Publish("orders", orders)
	check(err)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func run(mode orchestra.RecoveryMode, label string) {
	c, err := orchestra.NewCluster(6)
	check(err)
	defer c.Shutdown()
	load(c)

	// Reference answer on the healthy cluster.
	ref, err := c.Query(query)
	check(err)

	// Kill a node shortly after the query starts.
	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Kill(3)
		fmt.Printf("  [%s] node 3 killed mid-query\n", label)
	}()
	start := time.Now()
	res, err := c.QueryOpts(query, orchestra.QueryOptions{Recovery: mode})
	check(err)
	elapsed := time.Since(start)

	// The answer must be complete and duplicate-free despite the failure.
	if len(res.Rows) != len(ref.Rows) {
		log.Fatalf("[%s] row count changed after failure: %d vs %d",
			label, len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if !res.Rows[i].Equal(ref.Rows[i]) {
			log.Fatalf("[%s] row %d differs: %v vs %v", label, i, res.Rows[i], ref.Rows[i])
		}
	}
	fmt.Printf("  [%s] completed in %s (phases=%d, restarts=%d) — exact answer preserved\n",
		label, elapsed.Round(time.Millisecond), res.Phases, res.Restarts)
	for _, row := range res.Rows {
		fmt.Printf("    %-6s %6d orders  %10.2f revenue\n",
			row[0].Str, row[1].AsInt(), row[2].AsFloat())
	}
}

// runDurable publishes into a durable cluster, stops every node, then
// brings the whole cluster back from disk and re-runs the query: the
// answer, the schemas, and the epoch must all survive. (The crash-stop
// variant of this — SIGKILL instead of an orderly stop — runs in the
// repo's kill-and-restart e2e test; group-commit fsyncs make the two
// equivalent for acknowledged publishes.)
func runDurable() {
	dir, err := os.MkdirTemp("", "orchestra-failover")
	check(err)
	defer os.RemoveAll(dir)

	c, err := orchestra.NewCluster(6,
		orchestra.WithDataDir(dir), orchestra.WithSyncMode(orchestra.SyncAlways))
	check(err)
	load(c)
	ref, err := c.Query(query)
	check(err)
	epoch := c.CurrentEpoch()
	c.Shutdown()
	fmt.Printf("  [durable] cluster stopped at epoch %d; restarting from %s\n", epoch, dir)

	t0 := time.Now()
	c2, err := orchestra.NewCluster(6, orchestra.WithDataDir(dir))
	check(err)
	defer c2.Shutdown()
	if got := c2.CurrentEpoch(); got < epoch {
		log.Fatalf("[durable] recovered epoch %d < published epoch %d", got, epoch)
	}
	res, err := c2.Query(query)
	check(err)
	if len(res.Rows) != len(ref.Rows) {
		log.Fatalf("[durable] row count changed across restart: %d vs %d",
			len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if !res.Rows[i].Equal(ref.Rows[i]) {
			log.Fatalf("[durable] row %d differs: %v vs %v", i, res.Rows[i], ref.Rows[i])
		}
	}
	if d, ok := c2.DurabilityStats(0); ok {
		fmt.Printf("  [durable] recovered in %s (node 0 replayed %d wal records) — answer identical\n",
			time.Since(t0).Round(time.Millisecond), d.ReplayedRecords)
	}
}

// runProxied shows the serving layer's fault tolerance from the
// client's side. Two endpoints of the same cluster sit behind
// fault-injecting TCP proxies (internal/netfault); the client's member
// list is pinned to the proxy addresses so every byte crosses the fault
// injector. Mid-workload endpoint A first gains latency, then has every
// connection aborted with RST and stops accepting — a crashed machine,
// as the wire sees it. Queries are idempotent, so the client re-routes
// and retries them under its backoff policy: the workload finishes with
// zero failures and the chaos is visible only in the failover counters.
func runProxied() {
	c, err := orchestra.NewCluster(4)
	check(err)
	defer c.Shutdown()
	load(c)
	ref, err := c.Query(query)
	check(err)

	srvA, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{Node: 0})
	check(err)
	defer srvA.Close()
	srvB, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{Node: 1})
	check(err)
	defer srvB.Close()
	pA, err := netfault.New("127.0.0.1:0", srvA.Addr())
	check(err)
	defer pA.Close()
	pB, err := netfault.New("127.0.0.1:0", srvB.Addr())
	check(err)
	defer pB.Close()

	// Membership refresh is disabled: the servers advertise their direct
	// addresses, and adopting those would let the client route around
	// the proxies.
	cl, err := client.Dial(pA.Addr(), client.Options{
		Endpoints:       []string{pB.Addr()},
		RefreshInterval: -1,
		Retry: client.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 5 * time.Millisecond,
		},
	})
	check(err)
	defer cl.Close()

	ctx := context.Background()
	const n = 40
	for i := 0; i < n; i++ {
		switch i {
		case n / 4:
			pA.SetFaults(netfault.Faults{Delay: 10 * time.Millisecond})
			fmt.Println("  [proxied] endpoint A degraded (+10ms injected latency)")
		case n / 2:
			pA.ResetAll() // RST every live and pooled connection
			pA.Pause()    // and refuse new ones
			fmt.Println("  [proxied] endpoint A reset and unreachable")
		}
		res, err := cl.Query(ctx, query)
		if err != nil {
			log.Fatalf("[proxied] idempotent query %d failed despite retries: %v", i, err)
		}
		if len(res.Rows) != len(ref.Rows) {
			log.Fatalf("[proxied] query %d: %d rows, want %d", i, len(res.Rows), len(ref.Rows))
		}
	}
	check(pA.Resume())
	ctr := cl.Counters()
	fmt.Printf("  [proxied] %d/%d queries exact across degradation and reset — "+
		"%d attempts, %d retries, %d failovers, %d dial errors\n",
		n, n, ctr.Attempts, ctr.Retries, ctr.Failovers, ctr.DialErrors)
}

// runRejoin kills one durable replica, publishes a backlog while it is
// down, then restarts it. The node recovers its own store from WAL +
// snapshot and pulls exactly the records it missed from its replica
// peers over WAL shipping (the `walship` op); because every peer still
// retains the log suffix past the node's durable marker, no state
// transfer and no rebalance are needed. The repair counters make the
// mechanism visible.
func runRejoin() {
	dir, err := os.MkdirTemp("", "orchestra-rejoin")
	check(err)
	defer os.RemoveAll(dir)

	c, err := orchestra.NewCluster(4,
		orchestra.WithDataDir(dir),
		orchestra.WithReplication(3),
		orchestra.WithAntiEntropy(100*time.Millisecond))
	check(err)
	defer c.Shutdown()
	// Establish the repair baselines while every store is empty, so the
	// restart below is pure WAL catch-up rather than a first contact.
	for i := 0; i < 4; i++ {
		check(c.RepairNode(i))
	}
	load(c)

	c.Kill(3)
	fmt.Println("  [rejoin] node 3 killed; publishing a backlog while it is down")
	var backlog orchestra.Rows
	for i := 8000; i < 12000; i++ {
		backlog = append(backlog, orchestra.Row{i, i % 400, float64(i%97) + 0.5})
	}
	_, err = c.Publish("orders", backlog)
	check(err)
	ref, err := c.QueryOpts(query, orchestra.QueryOptions{Recovery: orchestra.RecoverIncremental})
	check(err)

	t0 := time.Now()
	check(c.RestartNode(3))
	st := c.ReplStats(3)
	fmt.Printf("  [rejoin] node 3 back in %s: %d records caught up over WAL shipping, "+
		"%d state transfers, lag %d\n",
		time.Since(t0).Round(time.Millisecond),
		st.CatchUpRecords, st.StateTransfers, st.MaxLag)
	if st.StateTransfers != 0 {
		log.Fatalf("[rejoin] expected pure WAL catch-up, got %d state transfers", st.StateTransfers)
	}
	res, err := c.Query(query)
	check(err)
	if len(res.Rows) != len(ref.Rows) {
		log.Fatalf("[rejoin] row count changed across rejoin: %d vs %d",
			len(res.Rows), len(ref.Rows))
	}
	for i := range res.Rows {
		if !res.Rows[i].Equal(ref.Rows[i]) {
			log.Fatalf("[rejoin] row %d differs: %v vs %v", i, res.Rows[i], ref.Rows[i])
		}
	}
	fmt.Printf("  [rejoin] answer exact over %d orders after rejoin\n", 12000)
}

func main() {
	fmt.Println("incremental recomputation (§V-D: purge tainted state, replay, restart leaves):")
	run(orchestra.RecoverIncremental, "incremental")

	fmt.Println("\nfull restart over the survivors:")
	run(orchestra.RecoverRestart, "restart")

	fmt.Println("\ndurable stores: stop the whole cluster, restart it from disk:")
	runDurable()

	fmt.Println("\nwire faults: proxied endpoint degraded, then reset mid-workload:")
	runProxied()

	fmt.Println("\nreplica rejoin: kill a durable replica, publish a backlog, catch up over WAL shipping:")
	runRejoin()
}
