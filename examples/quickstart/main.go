// Quickstart: start a local ORCHESTRA cluster, define a relation, publish
// versioned data, and run distributed SQL queries — including a historical
// query against an earlier epoch.
package main

import (
	"fmt"
	"log"

	"orchestra"
)

func main() {
	// Four storage/query nodes over a simulated network, data replicated 3x.
	c, err := orchestra.NewCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	// DDL: relations are partitioned by the hash of their key columns.
	err = c.CreateRelation(
		orchestra.NewSchema("inventory", "item:string", "qty:int", "price:float").
			Key("item"))
	if err != nil {
		log.Fatal(err)
	}

	// Publishing a batch advances the global epoch; every version remains
	// queryable forever.
	e1, err := c.Publish("inventory", orchestra.Rows{
		{"bolt", 90, 0.10},
		{"nut", 120, 0.05},
		{"washer", 200, 0.02},
		{"screw", 45, 0.12},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published 4 rows at epoch %d\n", e1)

	// A distributed query: optimized, partitioned, executed across all
	// nodes, results collected at the initiator.
	res, err := c.Query(
		"SELECT item, qty * price AS value FROM inventory WHERE qty > 50 ORDER BY value DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncurrent stock valued over the 50-unit threshold:\n")
	fmt.Printf("%-10s %s\n", res.Columns[0], res.Columns[1])
	for _, row := range res.Rows {
		fmt.Printf("%-10s %.2f\n", row[0].Str, row[1].AsFloat())
	}

	// Update a row: the old version is retained, the epoch advances.
	e2, err := c.Update("inventory", orchestra.Rows{{"washer", 10, 0.02}})
	if err != nil {
		log.Fatal(err)
	}

	now, _ := c.Query("SELECT qty FROM inventory WHERE item = 'washer'")
	then, _ := c.QueryOpts("SELECT qty FROM inventory WHERE item = 'washer'",
		orchestra.QueryOptions{Epoch: e1})
	fmt.Printf("\nwasher stock at epoch %d: %d; at epoch %d: %d\n",
		e2, now.Rows[0][0].AsInt(), e1, then.Rows[0][0].AsInt())

	// Aggregation with a final merge at the initiator.
	agg, err := c.Query("SELECT COUNT(*) AS n, SUM(qty) AS total FROM inventory")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d items, %d units in stock\n",
		agg.Rows[0][0].AsInt(), agg.Rows[0][1].AsInt())
	fmt.Printf("\nexecuted plan:\n%s\n", res.Plan)
}
