//go:build linux

package orchestra_test

import "syscall"

// childSysProcAttr asks the kernel to SIGKILL re-exec'd test children if
// the parent test process dies first (timeout panic, SIGKILL), so a
// failed chaos run cannot leak server processes that pollute later runs.
func childSysProcAttr() *syscall.SysProcAttr {
	return &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
