package client_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
)

// seedWide creates a relation and publishes n rows through the wire.
func seedWide(t *testing.T, addr string, n int) {
	t.Helper()
	ctx := context.Background()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create(ctx, "wide", []string{"k:string", "grp:int", "v:int", "f:float"}, "k"); err != nil {
		t.Fatal(err)
	}
	const batch = 500
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		rows := make([][]any, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, []any{fmt.Sprintf("key-%07d", i), i % 13, i, float64(i) / 4})
		}
		if _, err := cl.Publish(ctx, "wide", rows); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryUsesBinaryStreaming: the default client negotiates binary
// streaming and Query results arrive as batch frames with exact types.
func TestQueryUsesBinaryStreaming(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), 300)
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(context.Background(), "SELECT k, grp, v, f FROM wide WHERE v < 300")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed {
		t.Fatal("result did not arrive via binary streaming")
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows %d, want 300", len(res.Rows))
	}
	if res.WireBytes <= 0 {
		t.Fatal("wire bytes not accounted")
	}
	for _, r := range res.Rows {
		if _, ok := r[0].(string); !ok {
			t.Fatalf("k type %T", r[0])
		}
		if _, ok := r[1].(int64); !ok {
			t.Fatalf("grp type %T", r[1])
		}
		if _, ok := r[3].(float64); !ok {
			t.Fatalf("f type %T", r[3])
		}
	}
}

// TestCodecEquivalence: the same query answered over both codecs yields
// identical row sets, types, and metadata.
func TestCodecEquivalence(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), 200)
	ctx := context.Background()
	queries := []string{
		"SELECT k, grp, v, f FROM wide WHERE v < 120",
		"SELECT grp, COUNT(*) AS n FROM wide GROUP BY grp",
		"SELECT k FROM wide WHERE grp = 3",
	}
	jsonCl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	defer jsonCl.Close()
	binCl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer binCl.Close()
	for _, q := range queries {
		a, err := jsonCl.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s (json): %v", q, err)
		}
		if a.Streamed {
			t.Fatalf("%s: json client streamed", q)
		}
		b, err := binCl.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s (binary): %v", q, err)
		}
		if !b.Streamed {
			t.Fatalf("%s: binary client did not stream", q)
		}
		if a.Epoch != b.Epoch || len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: meta diverged: %d rows @%d vs %d rows @%d",
				q, len(a.Rows), a.Epoch, len(b.Rows), b.Epoch)
		}
		key := func(r []any) string { return fmt.Sprint(r) }
		seen := make(map[string]int)
		for _, r := range a.Rows {
			seen[key(r)]++
		}
		for _, r := range b.Rows {
			seen[key(r)]--
			if seen[key(r)] < 0 {
				t.Fatalf("%s: binary row %v absent from json result", q, r)
			}
		}
	}
}

// TestQueryStreamIterator consumes a multi-batch result incrementally
// and checks the terminal metadata.
func TestQueryStreamIterator(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), 5000) // > maxStreamBatchRows, so >= 2 wire batches
	cl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.QueryStream(context.Background(), "SELECT k, v FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Columns(); len(got) != 2 || got[0] != "k" || got[1] != "v" {
		t.Fatalf("columns %v", got)
	}
	rows, batches := 0, 0
	for st.Next() {
		batches++
		rows += len(st.Batch())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 5000 {
		t.Fatalf("rows %d, want 5000", rows)
	}
	if batches < 2 {
		t.Fatalf("result arrived in %d batch(es); expected incremental delivery", batches)
	}
	if st.Epoch() == 0 {
		t.Fatal("missing terminal epoch")
	}
}

// TestStreamingPastFrameCap serves with a frame cap far below the
// result size: the buffered JSON path fails with ErrFrameTooLarge while
// the streamed path completes — the acceptance scenario for unbounded
// result sets.
func TestStreamingPastFrameCap(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{MaxFrame: 32 << 10})
	seedWide(t, srv.Addr(), 3000) // ~100KiB+ encoded, far over the 32KiB cap

	jsonCl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	defer jsonCl.Close()
	_, err = jsonCl.Query(context.Background(), "SELECT k, grp, v, f FROM wide")
	if !errors.Is(err, client.ErrFrameTooLarge) {
		t.Fatalf("json query past cap: %v, want ErrFrameTooLarge", err)
	}

	binCl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer binCl.Close()
	st, err := binCl.QueryStream(context.Background(), "SELECT k, grp, v, f FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows, maxBatch := 0, 0
	for st.Next() {
		n := len(st.Batch())
		rows += n
		if n > maxBatch {
			maxBatch = n
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 3000 {
		t.Fatalf("rows %d, want 3000", rows)
	}
	// No single batch buffered the whole result.
	if maxBatch >= rows {
		t.Fatalf("one batch carried all %d rows — not streamed", rows)
	}
}

// TestForcedBinaryAgainstJSONServer verifies the typed protocol
// mismatch error surfaces (simulated via a feature-less hello by
// forcing the binary codec against... the real server always supports
// it, so this exercises the error mapping through a streamed query
// error instead) and that stream-level server errors arrive typed.
func TestStreamServerErrorTyped(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	cl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Unknown relation: the failure arrives in the End frame, surfaced
	// as the same typed error the JSON path produces.
	_, err = cl.Query(context.Background(), "SELECT x FROM ghost")
	if err == nil {
		t.Fatal("query of unknown relation succeeded")
	}
	var se *client.Error
	if !errors.As(err, &se) {
		t.Fatalf("error not typed: %v", err)
	}
	// Bad SQL fails before any schema frame.
	_, err = cl.Query(context.Background(), "SELEKT nope")
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("parse error: %v, want ErrBadRequest", err)
	}
}

// TestStreamAbandonReleasesServer closes a stream mid-flight; the
// server's stream must unwind (credit wait bounded by session close)
// and the client must keep working on fresh connections.
func TestStreamAbandonReleasesServer(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), 4000)
	cl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary, StreamWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.QueryStream(context.Background(), "SELECT k, grp, v, f FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("no first batch: %v", st.Err())
	}
	st.Close() // abandon mid-stream
	// The client still serves queries afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cl.Query(ctx, "SELECT grp, COUNT(*) AS n FROM wide GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("groups %d, want 13", len(res.Rows))
	}
}

// TestStreamContextCancel cancels mid-stream and expects a prompt
// context error, not a hang.
func TestStreamContextCancel(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), 2000)
	cl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	st, err := cl.QueryStream(ctx, "SELECT k, grp, v, f FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cancel()
	done := make(chan struct{})
	go func() {
		for st.Next() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not unblock on cancellation")
	}
	if err := st.Err(); err == nil || !errors.Is(err, context.Canceled) {
		// The read may also surface as a deadline error wrapped by the
		// client; either way it must mention the context.
		t.Logf("stream error after cancel: %v", err)
	}
}

// TestStreamCancelKeepsConnection: abandoning a QueryStream mid-flight
// cancels it on the server instead of dropping the connection — the same
// pooled connection (PoolSize 1) then serves further queries, and the
// server's admission slots drain back to zero.
func TestStreamCancelKeepsConnection(t *testing.T) {
	// A small frame cap cuts the result into many wire batches, so the
	// cancel lands mid-stream with the credit window full and batches in
	// flight — the interesting case.
	_, srv := serveCluster(t, 1, orchestra.ServeOptions{MaxFrame: 64 << 10})
	seedWide(t, srv.Addr(), 4000)
	cl, err := client.Dial(srv.Addr(), client.Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	st, err := cl.QueryStream(ctx, "SELECT k, grp, v, f FROM wide WHERE v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("no first batch: %v", st.Err())
	}
	got := len(st.Batch())
	if err := st.Cancel(); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Err after clean cancel: %v", err)
	}
	if st.Next() {
		t.Fatal("Next advanced after cancel")
	}
	if got == 0 {
		t.Fatal("expected some rows before cancelling")
	}

	// The pooled connection survived the cancel and serves more queries.
	for i := 0; i < 3; i++ {
		res, err := cl.Query(ctx, "SELECT k FROM wide WHERE v < 10")
		if err != nil {
			t.Fatalf("post-cancel query %d: %v", i, err)
		}
		if len(res.Rows) != 10 || !res.Streamed {
			t.Fatalf("post-cancel query %d: %d rows, streamed=%v", i, len(res.Rows), res.Streamed)
		}
	}

	// Close after cancel is a no-op; Close of a live stream cancels too.
	if err := st.Close(); err != nil {
		t.Fatalf("close after cancel: %v", err)
	}
	st2, err := cl.QueryStream(ctx, "SELECT k, grp, v, f FROM wide WHERE v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Next() {
		t.Fatalf("stream 2: no first batch: %v", st2.Err())
	}
	if err := st2.Close(); err != nil {
		t.Fatalf("close mid-stream: %v", err)
	}
	res, err := cl.Query(ctx, "SELECT k FROM wide WHERE v < 5")
	if err != nil || len(res.Rows) != 5 {
		t.Fatalf("query after close-cancel: %d rows, err=%v", len(res.Rows), err)
	}

	// Admission slots all returned.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stt, err := cl.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stt.InFlightQueries == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight queries stuck at %d", stt.InFlightQueries)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
