// Package client is the Go client for a served ORCHESTRA deployment
// (an orchestra.Cluster with Serve enabled, or an orchestra-node started
// with -serve). It speaks the length-prefixed JSON wire protocol over
// TCP, reuses a small pool of connections across calls, and surfaces
// server-side failures as typed errors.
//
//	cl, _ := client.Dial("127.0.0.1:7101")
//	defer cl.Close()
//	cl.Create(ctx, "inv", []string{"item:string", "qty:int"}, "item")
//	cl.Publish(ctx, "inv", [][]any{{"bolt", 90}, {"nut", 120}})
//	res, _ := cl.Query(ctx, "SELECT item, qty FROM inv WHERE qty > 100")
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"orchestra/internal/server"
)

// Typed error categories; unwrap with errors.Is. The full server message
// is available via errors.As on *Error.
var (
	// ErrBadRequest reports a malformed or unparsable request.
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound reports a missing relation.
	ErrNotFound = errors.New("not found")
	// ErrTimeout reports a server-side request timeout (admission wait
	// included).
	ErrTimeout = errors.New("timeout")
	// ErrServer reports any other server-side failure.
	ErrServer = errors.New("server error")
)

// Error is a failure reported by the server.
type Error struct {
	// Code is the wire code ("bad_request", "not_found", "timeout",
	// "internal").
	Code string
	// Message is the server's description.
	Message string
}

func (e *Error) Error() string { return "orchestra server: " + e.Code + ": " + e.Message }

// Unwrap maps the code onto the typed sentinel errors.
func (e *Error) Unwrap() error {
	switch e.Code {
	case server.CodeBadRequest:
		return ErrBadRequest
	case server.CodeNotFound:
		return ErrNotFound
	case server.CodeTimeout:
		return ErrTimeout
	}
	return ErrServer
}

// Options tunes a Client.
type Options struct {
	// PoolSize caps idle connections kept for reuse (default 2).
	// Concurrent calls beyond the pool dial extra connections that are
	// dropped when the pool is full on release.
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// Client is a connection-reusing client for one server endpoint. It is
// safe for concurrent use; each in-flight call holds one connection.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial validates connectivity to addr and returns a Client.
func Dial(addr string, opts ...Options) (*Client, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: o}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.release(conn)
	return c, nil
}

// Close drops all pooled connections; subsequent calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
	return nil
}

func (c *Client) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("orchestra client: %w", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn, nil
}

func (c *Client) acquire() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("orchestra client: closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return c.dial()
}

func (c *Client) release(conn net.Conn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.PoolSize {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	conn.Close()
}

// roundTrip sends one request and reads its response on a pooled
// connection. Calls are synchronous per connection; concurrency comes
// from multiple connections. Context cancellation interrupts an
// in-flight call (the connection is dropped, since its response may
// still arrive).
func (c *Client) roundTrip(ctx context.Context, req *server.Request) (*server.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("orchestra client: %w", err)
	}
	conn, err := c.acquire()
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	watchDone := make(chan struct{})
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0)) // unblock read/write now
			case <-watchDone:
			}
		}()
	}
	finish := func(err error) error {
		close(watchDone)
		conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("orchestra client: %w", ctxErr)
		}
		return err
	}
	var resp server.Response
	if err := server.WriteFrame(conn, req); err != nil {
		return nil, finish(fmt.Errorf("orchestra client: write: %w", err))
	}
	if err := server.ReadFrame(conn, &resp); err != nil {
		return nil, finish(fmt.Errorf("orchestra client: read: %w", err))
	}
	close(watchDone)
	conn.SetDeadline(time.Time{})
	c.release(conn)
	if resp.Error != nil {
		return nil, &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return &resp, nil
}

// Ping checks liveness and returns the server's current epoch.
func (c *Client) Ping(ctx context.Context) (uint64, error) {
	resp, err := c.roundTrip(ctx, &server.Request{Op: server.OpPing})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Create registers a relation. Columns are "name:type" (int, float,
// string); keys name the partitioning key columns (default: first
// column).
func (c *Client) Create(ctx context.Context, relation string, columns []string, keys ...string) error {
	_, err := c.roundTrip(ctx, &server.Request{
		Op:     server.OpCreate,
		Create: &server.CreateRequest{Relation: relation, Columns: columns, Keys: keys},
	})
	return err
}

// Publish inserts a batch of rows as one published update and returns
// the new global epoch. Values may be int, int64, float64, or string.
func (c *Client) Publish(ctx context.Context, relation string, rows [][]any) (uint64, error) {
	resp, err := c.roundTrip(ctx, &server.Request{
		Op:      server.OpPublish,
		Publish: &server.PublishRequest{Relation: relation, Rows: rows},
	})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// QueryOptions tunes one query; the zero value queries the current
// epoch with restart recovery.
type QueryOptions struct {
	// Epoch pins the snapshot (0 = current).
	Epoch uint64
	// Recovery is "", "fail", "restart", or "incremental".
	Recovery string
	// Provenance forces provenance tracking.
	Provenance bool
	// Explain asks for the optimizer's plan in Result.Plan.
	Explain bool
}

// Result is a completed query. Row values are int64, float64, or string.
type Result struct {
	Columns  []string
	Rows     [][]any
	Epoch    uint64
	Cached   bool
	Phases   uint32
	Restarts int
	Plan     string
}

// Query runs a SQL query at the current epoch with default options.
func (c *Client) Query(ctx context.Context, sql string) (*Result, error) {
	return c.QueryOpts(ctx, sql, QueryOptions{})
}

// QueryOpts runs a SQL query with explicit options.
func (c *Client) QueryOpts(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	req := &server.Request{
		Op: server.OpQuery,
		Query: &server.QueryRequest{
			SQL:        sql,
			Epoch:      opts.Epoch,
			Recovery:   opts.Recovery,
			Provenance: opts.Provenance,
			Explain:    opts.Explain,
		},
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Query.TimeoutMs = ms
		}
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return nil, err
	}
	q := resp.Query
	if q == nil {
		return nil, fmt.Errorf("orchestra client: malformed response (no query payload)")
	}
	rows := make([][]any, len(q.Rows))
	for i, wr := range q.Rows {
		row := make([]any, len(wr))
		for j, v := range wr {
			row[j], err = server.DecodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("orchestra client: row %d col %d: %w", i, j, err)
			}
		}
		rows[i] = row
	}
	return &Result{
		Columns:  q.Columns,
		Rows:     rows,
		Epoch:    q.Epoch,
		Cached:   q.Cached,
		Phases:   q.Phases,
		Restarts: q.Restarts,
		Plan:     q.Plan,
	}, nil
}

// Relation describes one catalog entry.
type Relation = server.RelationInfo

// Schema fetches one relation's catalog entry.
func (c *Client) Schema(ctx context.Context, relation string) (*Relation, error) {
	resp, err := c.roundTrip(ctx, &server.Request{
		Op:     server.OpSchema,
		Schema: &server.SchemaRequest{Relation: relation},
	})
	if err != nil {
		return nil, err
	}
	if resp.Schema == nil || len(resp.Schema.Relations) == 0 {
		return nil, &Error{Code: server.CodeNotFound, Message: "relation " + relation}
	}
	return &resp.Schema.Relations[0], nil
}

// Catalog lists all relations the server knows about.
func (c *Client) Catalog(ctx context.Context) ([]Relation, error) {
	resp, err := c.roundTrip(ctx, &server.Request{Op: server.OpSchema, Schema: &server.SchemaRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.Schema == nil {
		return nil, nil
	}
	return resp.Schema.Relations, nil
}

// Status reports the server's identity and load counters.
type Status = server.StatusResponse

// Status fetches the server's status/stats snapshot.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	resp, err := c.roundTrip(ctx, &server.Request{Op: server.OpStatus})
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("orchestra client: malformed response (no status payload)")
	}
	return resp.Status, nil
}
