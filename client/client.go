// Package client is the Go client for a served ORCHESTRA deployment
// (an orchestra.Cluster with Serve enabled, or an orchestra-node started
// with -serve). It speaks the length-prefixed wire protocol over TCP,
// reuses a small pool of connections across calls, and surfaces
// server-side failures as typed errors.
//
// By default the client negotiates the binary streaming extension on
// each connection (a hello handshake): query results then arrive as
// column-major row-batch frames decoded incrementally — both behind the
// buffered Query API and the incremental QueryStream iterator — and fall
// back to plain JSON frames transparently against old servers.
//
//	cl, _ := client.Dial("127.0.0.1:7101")
//	defer cl.Close()
//	cl.Create(ctx, "inv", []string{"item:string", "qty:int"}, "item")
//	cl.Publish(ctx, "inv", [][]any{{"bolt", 90}, {"nut", 120}})
//	res, _ := cl.Query(ctx, "SELECT item, qty FROM inv WHERE qty > 100")
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/obs"
	"orchestra/internal/server"
	"orchestra/internal/tuple"
)

// Typed error categories; unwrap with errors.Is. The full server message
// is available via errors.As on *Error.
var (
	// ErrBadRequest reports a malformed or unparsable request.
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound reports a missing relation.
	ErrNotFound = errors.New("not found")
	// ErrTimeout reports a server-side request timeout (admission wait
	// included).
	ErrTimeout = errors.New("timeout")
	// ErrFrameTooLarge reports a single wire frame exceeding the
	// connection's negotiated limit — typically a buffered JSON result
	// too big for one frame. Streamed binary results are not subject to
	// a whole-result cap; retry with the binary codec.
	ErrFrameTooLarge = errors.New("frame too large")
	// ErrBinaryUnsupported reports that the server does not speak the
	// binary streaming extension while Options.Codec required it.
	ErrBinaryUnsupported = errors.New("server does not support binary streaming")
	// ErrCancelled reports a stream terminated by a cancel frame.
	ErrCancelled = errors.New("stream cancelled")
	// ErrServer reports any other server-side failure.
	ErrServer = errors.New("server error")
)

// Error is a failure reported by the server.
type Error struct {
	// Code is the wire code ("bad_request", "not_found", "timeout",
	// "frame_too_large", "internal").
	Code string
	// Message is the server's description.
	Message string
}

func (e *Error) Error() string { return "orchestra server: " + e.Code + ": " + e.Message }

// Unwrap maps the code onto the typed sentinel errors.
func (e *Error) Unwrap() error {
	switch e.Code {
	case server.CodeBadRequest:
		return ErrBadRequest
	case server.CodeNotFound:
		return ErrNotFound
	case server.CodeTimeout:
		return ErrTimeout
	case server.CodeFrameTooLarge:
		return ErrFrameTooLarge
	case server.CodeCancelled:
		return ErrCancelled
	}
	return ErrServer
}

// Codec names for Options.Codec.
const (
	// CodecAuto negotiates binary streaming and falls back to JSON
	// against servers that predate it (the default).
	CodecAuto = "auto"
	// CodecBinary requires binary streaming; dialing an old server
	// fails with ErrBinaryUnsupported.
	CodecBinary = "binary"
	// CodecJSON forces the plain JSON result path (no hello handshake).
	CodecJSON = "json"
)

// Options tunes a Client.
type Options struct {
	// PoolSize caps idle connections kept for reuse per endpoint
	// (default 2). Concurrent calls beyond the pool dial extra
	// connections that are dropped when the pool is full on release.
	PoolSize int
	// DialTimeout bounds connection establishment (default 5s). It also
	// bounds client-initiated protocol exchanges with no caller
	// deadline of their own (hello, stream-cancel drain, membership
	// refresh).
	DialTimeout time.Duration
	// Codec selects the result codec: CodecAuto (default), CodecBinary,
	// or CodecJSON.
	Codec string
	// MaxFrame bounds a single inbound frame (default server.MaxFrame);
	// offered to the server during negotiation, which uses the min of
	// the two peers' limits.
	MaxFrame int64
	// StreamWindow is the flow-control credit window requested for
	// streamed results, in batch frames (default the server's offer).
	StreamWindow int
	// Endpoints seeds additional cluster members beyond the dialed
	// address. The member list grows and shrinks as the cluster
	// advertises peers (see RefreshInterval); seeds are never dropped.
	Endpoints []string
	// Retry governs automatic retry and failover of failed calls; see
	// RetryPolicy for what is and is not safe to retry.
	Retry RetryPolicy
	// RefreshInterval paces background membership refreshes via the
	// health op (default 30s; negative disables). A refresh is also
	// triggered whenever an endpoint fails.
	RefreshInterval time.Duration
	// Balance selects the endpoint for each call: BalanceRoundRobin
	// (default) or BalanceLeastLoaded.
	Balance string
}

// Client is a connection-reusing client for a served deployment. It
// maintains a cluster member list (seeded from the dialed address,
// refreshed from the servers' advertised peers), balances calls across
// healthy members, and — under Options.Retry — fails idempotent calls
// over to another member. It is safe for concurrent use; each in-flight
// call holds one connection.
type Client struct {
	opts  Options
	retry RetryPolicy
	seeds []string

	// jsonOnly latches when the server rejects the hello handshake, so
	// later dials skip the wasted round trip (CodecAuto only).
	jsonOnly atomic.Bool

	rr         atomic.Uint64 // round-robin cursor
	ctr        counters
	refreshing atomic.Bool

	mu          sync.Mutex
	eps         []*endpoint
	lastRefresh time.Time
	closed      bool
}

// wireConn is one pooled connection plus its negotiated protocol state.
type wireConn struct {
	net.Conn
	br *bufio.Reader
	ep *endpoint // owning endpoint (pool, load and health bookkeeping)
	// binary reports a successful FeatureBinaryStream negotiation.
	binary bool
	// binaryPublish reports FeatureBinaryPublish: publishes may cross the
	// wire as one typed column-major batch frame instead of JSON rows.
	binaryPublish bool
	// publishID reports FeaturePublishID: the server deduplicates
	// publishes by their client-chosen ID, making them safe to retry.
	publishID bool
	// maxFrame is the negotiated frame limit, enforced in both
	// directions. (The negotiated stream window needs no client state:
	// it governs the server's sending, and the client grants one credit
	// per consumed batch regardless of window size.)
	maxFrame int64
}

// Dial validates connectivity to addr (performing the protocol handshake
// unless Codec is CodecJSON) and returns a Client. addr plus
// Options.Endpoints seed the cluster member list.
func Dial(addr string, opts ...Options) (*Client, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	switch o.Codec {
	case "", CodecAuto:
		o.Codec = CodecAuto
	case CodecBinary, CodecJSON:
	default:
		return nil, fmt.Errorf("orchestra client: unknown codec %q", o.Codec)
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = server.MaxFrame
	}
	if o.MaxFrame > server.MaxFrameLimit {
		o.MaxFrame = server.MaxFrameLimit // lengths must stay below the tag bit
	}
	if o.RefreshInterval == 0 {
		o.RefreshInterval = 30 * time.Second
	}
	switch o.Balance {
	case "":
		o.Balance = BalanceRoundRobin
	case BalanceRoundRobin, BalanceLeastLoaded:
	default:
		return nil, fmt.Errorf("orchestra client: unknown balance mode %q", o.Balance)
	}
	c := &Client{opts: o, retry: o.Retry.normalized()}
	seen := map[string]bool{}
	for _, a := range append([]string{addr}, o.Endpoints...) {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		c.seeds = append(c.seeds, a)
		c.eps = append(c.eps, &endpoint{addr: a})
	}
	conn, err := c.acquireOn(c.eps[0])
	if err != nil {
		return nil, err
	}
	c.release(conn)
	c.refreshAsync() // discover peers in the background
	return c, nil
}

// Close drops all pooled connections; subsequent calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	eps := c.eps
	c.closed = true
	c.mu.Unlock()
	for _, e := range eps {
		e.drop()
	}
	return nil
}

// dial establishes one connection to ep and negotiates the protocol.
func (c *Client) dial(ep *endpoint) (*wireConn, error) {
	nc, err := net.DialTimeout("tcp", ep.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("orchestra client: %w", err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn := &wireConn{
		Conn:     nc,
		br:       bufio.NewReaderSize(nc, 32<<10),
		ep:       ep,
		maxFrame: c.opts.MaxFrame,
	}
	if c.opts.Codec == CodecJSON || (c.opts.Codec == CodecAuto && c.jsonOnly.Load()) {
		return conn, nil
	}
	if err := c.hello(conn); err != nil {
		nc.Close()
		return nil, err
	}
	return conn, nil
}

// hello negotiates the binary streaming extension on a fresh connection.
// Old servers answer with bad_request (unknown op); CodecAuto degrades
// to JSON, CodecBinary surfaces ErrBinaryUnsupported.
func (c *Client) hello(conn *wireConn) error {
	conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	defer conn.SetDeadline(time.Time{})
	req := &server.Request{
		ID: 1,
		Op: server.OpHello,
		Hello: &server.HelloRequest{
			Version:  server.ProtocolVersion,
			Features: []string{server.FeatureBinaryStream, server.FeatureBinaryPublish, server.FeaturePublishID},
			MaxFrame: c.opts.MaxFrame,
			Window:   c.opts.StreamWindow,
		},
	}
	if err := server.WriteFrame(conn.Conn, req); err != nil {
		return fmt.Errorf("orchestra client: hello: %w", err)
	}
	resp, _, err := readResponse(conn)
	if err != nil {
		return fmt.Errorf("orchestra client: hello: %w", err)
	}
	if resp.Error != nil {
		if resp.Error.Code == server.CodeBadRequest {
			// Pre-hello server.
			if c.opts.Codec == CodecBinary {
				return fmt.Errorf("orchestra client: %w (%s)", ErrBinaryUnsupported, resp.Error.Message)
			}
			c.jsonOnly.Store(true)
			return nil
		}
		return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	h := resp.Hello
	if h == nil {
		return errors.New("orchestra client: malformed hello response")
	}
	for _, f := range h.Features {
		switch f {
		case server.FeatureBinaryStream:
			conn.binary = true
		case server.FeatureBinaryPublish:
			conn.binaryPublish = true
		case server.FeaturePublishID:
			conn.publishID = true
		}
	}
	conn.binaryPublish = conn.binaryPublish && conn.binary // tagged frames require the stream extension
	if !conn.binary {
		if c.opts.Codec == CodecBinary {
			return fmt.Errorf("orchestra client: %w (server version %d)", ErrBinaryUnsupported, h.Version)
		}
		c.jsonOnly.Store(true)
		return nil
	}
	if h.MaxFrame > 0 {
		// Adopt the negotiated limit in both directions (the server
		// already took the min of the two offers, floored at MinFrame so
		// control frames always fit).
		conn.maxFrame = h.MaxFrame
	}
	return nil
}

// readResponse reads one JSON response of either framing, returning the
// frame's wire size for accounting.
func readResponse(conn *wireConn) (*server.Response, int64, error) {
	kind, payload, isBinary, err := server.ReadRawFrame(conn.br, conn.maxFrame)
	if err != nil {
		var fse *server.FrameSizeError
		if errors.As(err, &fse) {
			return nil, 0, fmt.Errorf("%w: inbound frame of %d bytes exceeds limit %d",
				ErrFrameTooLarge, fse.Size, fse.Max)
		}
		return nil, 0, err
	}
	n := frameWireSize(payload, isBinary)
	if kind != server.FrameJSON {
		return nil, n, fmt.Errorf("orchestra client: unexpected %v frame", kind)
	}
	var resp server.Response
	if err := server.UnmarshalJSONFrame(payload, &resp); err != nil {
		return nil, n, err
	}
	return &resp, n, nil
}

func frameWireSize(payload []byte, isBinary bool) int64 {
	n := int64(4 + len(payload))
	if isBinary {
		n++ // kind byte
	}
	return n
}

// connCall wires context cancellation to a connection held by one call:
// cancellation forces an immediate deadline so blocked reads/writes
// unblock now.
type connCall struct {
	conn      *wireConn
	ctx       context.Context
	watchDone chan struct{}
}

func newConnCall(ctx context.Context, conn *wireConn) *connCall {
	cc := &connCall{conn: conn, ctx: ctx, watchDone: make(chan struct{})}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				cc.conn.SetDeadline(time.Unix(1, 0)) // unblock read/write now
			case <-cc.watchDone:
			}
		}()
	}
	return cc
}

// finish tears down the watchdog. keep reports whether the connection is
// clean (all response frames consumed) and may return to the pool.
func (cc *connCall) finish(c *Client, keep bool) {
	close(cc.watchDone)
	if keep && cc.ctx.Err() == nil {
		cc.conn.SetDeadline(time.Time{})
		c.release(cc.conn)
		return
	}
	c.discard(cc.conn)
}

// wrapErr folds a context cancellation into err.
func (cc *connCall) wrapErr(err error) error {
	if ctxErr := cc.ctx.Err(); ctxErr != nil {
		return fmt.Errorf("orchestra client: %w", ctxErr)
	}
	return err
}

// roundTrip sends one request and reads its response on a pooled
// connection, retrying across endpoints under the client's RetryPolicy.
// Calls are synchronous per connection; concurrency comes from multiple
// connections.
func (c *Client) roundTrip(ctx context.Context, req *server.Request) (*server.Response, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("orchestra client: %w", err)
	}
	// Creates mutate; everything else that flows through here is a read.
	idempotent := req.Op != server.OpCreate
	var resp *server.Response
	var n int64
	_, err := c.withRetry(ctx, idempotent, false, func(conn *wireConn) error {
		r, sz, err := c.roundTripOn(ctx, conn, req)
		if err != nil {
			return err
		}
		resp, n = r, sz
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return resp, n, nil
}

// writeRequest encodes and sends one request frame, enforcing the
// connection's negotiated frame limit before any bytes hit the wire —
// an oversized request fails fast with ErrFrameTooLarge instead of
// making the server abort the connection.
func writeRequest(conn *wireConn, req *server.Request) error {
	frame, err := server.AppendFrame(nil, req, conn.maxFrame)
	if err != nil {
		var fse *server.FrameSizeError
		if errors.As(err, &fse) {
			return fmt.Errorf("%w: request frame of %d bytes exceeds negotiated limit %d",
				ErrFrameTooLarge, fse.Size, fse.Max)
		}
		return err
	}
	_, err = conn.Write(frame)
	return err
}

// roundTripOn runs one request/response exchange on an already-acquired
// connection, handling cancellation, cleanup, and error typing; the
// connection returns to the pool only on a clean exchange.
func (c *Client) roundTripOn(ctx context.Context, conn *wireConn, req *server.Request) (*server.Response, int64, error) {
	cc := newConnCall(ctx, conn)
	if err := writeRequest(conn, req); err != nil {
		keep := errors.Is(err, ErrFrameTooLarge) // nothing was sent; conn is clean
		err = cc.wrapErr(fmt.Errorf("orchestra client: write: %w", err))
		cc.finish(c, keep)
		return nil, 0, err
	}
	resp, n, err := readResponse(conn)
	if err != nil {
		err = cc.wrapErr(fmt.Errorf("orchestra client: read: %w", err))
		cc.finish(c, false)
		return nil, 0, err
	}
	cc.finish(c, true)
	if resp.Error != nil {
		return nil, n, &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return resp, n, nil
}

// Ping checks liveness and returns the server's current epoch.
func (c *Client) Ping(ctx context.Context) (uint64, error) {
	resp, _, err := c.roundTrip(ctx, &server.Request{Op: server.OpPing})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Create registers a relation. Columns are "name:type" (int, float,
// string); keys name the partitioning key columns (default: first
// column).
func (c *Client) Create(ctx context.Context, relation string, columns []string, keys ...string) error {
	_, _, err := c.roundTrip(ctx, &server.Request{
		Op:     server.OpCreate,
		Create: &server.CreateRequest{Relation: relation, Columns: columns, Keys: keys},
	})
	return err
}

// Publish inserts a batch of rows as one published update and returns
// the new global epoch. Values may be int, int64, float64, or string.
//
// Every publish carries a random publish ID. Servers with the
// publish-id extension record it with the commit and answer a duplicate
// with the original epoch, which makes a publish whose outcome was lost
// to a connection failure safe to retry on another endpoint — the
// client does so automatically under Options.Retry, but only when both
// the failed and the retry connection negotiated the extension.
//
// On connections that negotiated the binary publish extension the rows
// cross the wire as one typed column-major batch frame (tuple.AppendBatch),
// eliminating JSON marshaling here and per-value coercion on the server;
// rows the batch codec cannot carry (mixed value types within a column,
// unsupported Go types) and old servers fall back to the JSON request
// transparently.
func (c *Client) Publish(ctx context.Context, relation string, rows [][]any) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("orchestra client: %w", err)
	}
	pubID := newPublishID()
	var epoch uint64
	_, err := c.withRetry(ctx, false, true, func(conn *wireConn) error {
		if conn.binaryPublish {
			if typed, ok := typedRowsOf(rows); ok {
				e, err, fellBack := c.publishBinary(ctx, conn, relation, pubID, typed)
				if !fellBack {
					if err != nil {
						return err
					}
					epoch = e
					return nil
				}
				// The batch frame could not be built (e.g. mixed column
				// types): the connection is untouched, reuse it for JSON.
			}
		}
		resp, _, err := c.roundTripOn(ctx, conn, &server.Request{
			Op:      server.OpPublish,
			Publish: &server.PublishRequest{Relation: relation, PublishID: pubID, Rows: rows},
		})
		if err != nil {
			return err
		}
		epoch = resp.Epoch
		return nil
	})
	if err != nil {
		return 0, err
	}
	return epoch, nil
}

// publishCompressMin is the raw batch size at which a binary publish
// frame is flate-compressed (mirrors the server's streamed-batch
// default; small publishes are cheaper to send raw).
const publishCompressMin = 4 << 10

// typedRowsOf converts caller values into typed tuple rows; !ok when a
// value has no direct tuple type (the JSON path handles those).
func typedRowsOf(rows [][]any) ([]tuple.Row, bool) {
	out := make([]tuple.Row, len(rows))
	for i, r := range rows {
		row := make(tuple.Row, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case int:
				row[j] = tuple.I(int64(x))
			case int64:
				row[j] = tuple.I(x)
			case float64:
				row[j] = tuple.F(x)
			case string:
				row[j] = tuple.S(x)
			default:
				return nil, false
			}
		}
		out[i] = row
	}
	return out, true
}

// publishBinary sends one publish as a FramePublish batch frame on conn
// and reads its JSON response. fellBack reports that nothing was sent
// (frame could not be built) and the caller should retry over JSON on
// the same connection.
func (c *Client) publishBinary(ctx context.Context, conn *wireConn, relation string, pubID uint64, rows []tuple.Row) (epoch uint64, err error, fellBack bool) {
	payload, err := server.AppendPublishPayload(make([]byte, 0, 4096), 1, pubID, relation, rows, publishCompressMin)
	if err != nil {
		return 0, nil, true // heterogeneous batch: JSON carries it
	}
	frame, err := server.AppendBinaryFrame(make([]byte, 0, len(payload)+8), server.FramePublish, payload, conn.maxFrame)
	if err != nil {
		// Nothing was sent; let the JSON path carry the request — and,
		// for a frame over the negotiated size limit, produce the typed
		// error the caller expects.
		return 0, nil, true
	}
	cc := newConnCall(ctx, conn)
	if _, err := conn.Write(frame); err != nil {
		err = cc.wrapErr(fmt.Errorf("orchestra client: write: %w", err))
		cc.finish(c, false)
		return 0, err, false
	}
	resp, _, err := readResponse(conn)
	if err != nil {
		err = cc.wrapErr(fmt.Errorf("orchestra client: read: %w", err))
		cc.finish(c, false)
		return 0, err, false
	}
	cc.finish(c, true)
	if resp.Error != nil {
		return 0, &Error{Code: resp.Error.Code, Message: resp.Error.Message}, false
	}
	return resp.Epoch, nil, false
}

// QueryOptions tunes one query; the zero value queries the current
// epoch with restart recovery.
type QueryOptions struct {
	// Epoch pins the snapshot (0 = current).
	Epoch uint64
	// Recovery is "", "fail", "restart", or "incremental".
	Recovery string
	// Provenance forces provenance tracking.
	Provenance bool
	// Explain asks for the optimizer's plan in Result.Plan.
	Explain bool
	// Trace asks for the query's span tree in Result.Trace: planning,
	// per-fragment scans, ship encode/decode, and the final pipeline,
	// with durations and row/byte counts.
	Trace bool
}

// Result is a completed query. Row values are int64, float64, or string.
type Result struct {
	Columns  []string
	Rows     [][]any
	Epoch    uint64
	Cached   bool
	Phases   uint32
	Restarts int
	Plan     string
	// WireBytes is the total size of the response frames that carried
	// this result (codec comparison/accounting).
	WireBytes int64
	// Streamed reports that the result arrived as binary batch frames.
	Streamed bool
	// Attempts counts the call attempts this result took (1 = no
	// retries); Failovers counts attempts that switched endpoint; and
	// Endpoint is the address that served the final attempt.
	Attempts  int
	Failovers int
	Endpoint  string
	// TraceID and Trace carry the execution's span tree when
	// QueryOptions.Trace was set.
	TraceID string
	Trace   *TraceSpan
}

// TraceSpan is one timed stage of a traced query — the nodes of
// Result.Trace's span tree.
type TraceSpan = obs.Span

// Query runs a SQL query at the current epoch with default options.
func (c *Client) Query(ctx context.Context, sql string) (*Result, error) {
	return c.QueryOpts(ctx, sql, QueryOptions{})
}

// QueryOpts runs a SQL query with explicit options. On connections that
// negotiated binary streaming the result arrives as batch frames and is
// assembled incrementally; otherwise as one JSON response.
//
// Queries are idempotent, so under Options.Retry a buffered query is
// fully fault-tolerant: a failure at any point — dial, mid-stream, even
// with partial rows already decoded — discards the partial result and
// re-runs the query, preferring a different endpoint.
func (c *Client) QueryOpts(ctx context.Context, sql string, opts QueryOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("orchestra client: %w", err)
	}
	var res *Result
	meta, err := c.withRetry(ctx, true, false, func(conn *wireConn) error {
		st, err := c.startStream(ctx, conn, sql, opts)
		if err != nil {
			return err
		}
		r, err := drainStream(st)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Attempts = meta.attempts
	res.Failovers = meta.failovers
	res.Endpoint = meta.endpoint
	return res, nil
}

// drainStream consumes a stream to completion into a buffered Result.
func drainStream(st *Stream) (*Result, error) {
	res := &Result{Columns: st.Columns()}
	for st.Next() {
		res.Rows = append(res.Rows, st.Batch()...)
	}
	if err := st.Err(); err != nil {
		st.Close()
		return nil, err
	}
	st.Close()
	res.Epoch = st.Epoch()
	res.Cached = st.Cached()
	res.Phases = st.Phases()
	res.Restarts = st.Restarts()
	res.Plan = st.Plan()
	res.WireBytes = st.WireBytes()
	res.Streamed = st.Streamed()
	res.TraceID = st.TraceID()
	res.Trace = st.Trace()
	return res, nil
}

// queryRequest builds the wire request for one query.
func queryRequest(ctx context.Context, sql string, opts QueryOptions, stream bool) *server.Request {
	req := &server.Request{
		Op: server.OpQuery,
		Query: &server.QueryRequest{
			SQL:        sql,
			Epoch:      opts.Epoch,
			Recovery:   opts.Recovery,
			Provenance: opts.Provenance,
			Explain:    opts.Explain,
			Stream:     stream,
			Trace:      opts.Trace,
		},
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Query.TimeoutMs = ms
		}
	}
	return req
}

// Stream is an incrementally decoded query result: a sequence of row
// batches followed by terminal metadata. Iterate with Next/Batch, check
// Err, then read the metadata accessors; Close must always be called.
// On JSON-fallback connections the whole result arrives buffered and is
// replayed as a single batch, so code written against Stream works
// unchanged against old servers.
type Stream struct {
	c    *Client
	conn *wireConn
	cc   *connCall
	id   uint64

	cols      []string
	batch     [][]any
	pending   bool // a consumed batch needs a credit grant
	err       error
	done      bool
	end       *server.StreamEnd
	wireBytes int64
	streamed  bool
	endpoint  string

	// fallback holds a buffered JSON result replayed as one batch.
	fallback *Result
	played   bool
}

// QueryStream starts a streamed query and returns its result iterator.
//
// Under Options.Retry a failure to start the stream — dial error,
// draining endpoint, connection lost before the first frame — retries
// on another endpoint; no rows have been surfaced, so the retry is
// invisible. Once the iterator is returned, failures surface through
// Err: rows already handed to the caller cannot be un-consumed, so
// mid-stream recovery is the caller's call (or use Query, which buffers
// and is therefore fully retryable).
//
//	st, err := cl.QueryStream(ctx, "SELECT * FROM big")
//	if err != nil { ... }
//	defer st.Close()
//	for st.Next() {
//	    for _, row := range st.Batch() { ... }
//	}
//	if err := st.Err(); err != nil { ... }
func (c *Client) QueryStream(ctx context.Context, sql string, opts ...QueryOptions) (*Stream, error) {
	var o QueryOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("orchestra client: %w", err)
	}
	var st *Stream
	_, err := c.withRetry(ctx, true, false, func(conn *wireConn) error {
		s, err := c.startStream(ctx, conn, sql, o)
		if err != nil {
			return err
		}
		st = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// startStream performs one attempt at starting a streamed query on an
// already-acquired connection, up to the schema frame (or the buffered
// JSON exchange on connections without binary streaming).
func (c *Client) startStream(ctx context.Context, conn *wireConn, sql string, o QueryOptions) (*Stream, error) {
	if !conn.binary {
		return c.bufferedStream(ctx, conn, sql, o)
	}
	st := &Stream{c: c, conn: conn, id: 1, streamed: true, endpoint: conn.ep.addr}
	st.cc = newConnCall(ctx, conn)
	req := queryRequest(ctx, sql, o, true)
	req.ID = st.id
	if err := writeRequest(conn, req); err != nil {
		keep := errors.Is(err, ErrFrameTooLarge) // nothing was sent; conn is clean
		err = st.cc.wrapErr(fmt.Errorf("orchestra client: write: %w", err))
		st.cc.finish(c, keep)
		return nil, err
	}
	// The first frame is Schema — or End when the query failed outright.
	kind, payload, isBinary, err := st.readFrame()
	if err != nil {
		st.cc.finish(c, false)
		return nil, err
	}
	st.wireBytes += frameWireSize(payload, isBinary)
	switch kind {
	case server.FrameSchema:
		_, cols, err := server.DecodeSchemaPayload(payload)
		if err != nil {
			st.cc.finish(c, false)
			return nil, err
		}
		st.cols = cols
		return st, nil
	case server.FrameEnd:
		_, end, err := server.DecodeEndPayload(payload)
		if err == nil {
			if end.Error != nil {
				err = &Error{Code: end.Error.Code, Message: end.Error.Message}
			} else {
				err = errors.New("orchestra client: stream ended before schema")
			}
		}
		st.cc.finish(c, true)
		return nil, err
	default:
		st.cc.finish(c, false)
		return nil, fmt.Errorf("orchestra client: unexpected %v frame at stream start", kind)
	}
}

// bufferedStream adapts the JSON single-frame path to the Stream API.
func (c *Client) bufferedStream(ctx context.Context, conn *wireConn, sql string, opts QueryOptions) (*Stream, error) {
	resp, n, err := c.roundTripOn(ctx, conn, queryRequest(ctx, sql, opts, false))
	if err != nil {
		return nil, err
	}
	q := resp.Query
	if q == nil {
		return nil, fmt.Errorf("orchestra client: malformed response (no query payload)")
	}
	rows := make([][]any, len(q.Rows.Any))
	for i, wr := range q.Rows.Any {
		row := make([]any, len(wr))
		for j, v := range wr {
			row[j], err = server.DecodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("orchestra client: row %d col %d: %w", i, j, err)
			}
		}
		rows[i] = row
	}
	return &Stream{
		done: true,
		fallback: &Result{
			Columns:   q.Columns,
			Rows:      rows,
			Epoch:     q.Epoch,
			Cached:    q.Cached,
			Phases:    q.Phases,
			Restarts:  q.Restarts,
			Plan:      q.Plan,
			WireBytes: n,
			TraceID:   q.TraceID,
			Trace:     q.Trace,
		},
		wireBytes: n,
	}, nil
}

// readFrame reads one raw frame off the stream's connection, mapping
// frame-size violations onto ErrFrameTooLarge.
func (s *Stream) readFrame() (server.FrameKind, []byte, bool, error) {
	kind, payload, isBinary, err := server.ReadRawFrame(s.conn.br, s.conn.maxFrame)
	if err != nil {
		var fse *server.FrameSizeError
		if errors.As(err, &fse) {
			err = fmt.Errorf("%w: inbound frame of %d bytes exceeds limit %d",
				ErrFrameTooLarge, fse.Size, fse.Max)
		}
		return kind, payload, isBinary, s.cc.wrapErr(err)
	}
	return kind, payload, isBinary, nil
}

// Next advances to the next batch, returning false at the end of the
// stream or on error (check Err).
func (s *Stream) Next() bool {
	if s.fallback != nil {
		if s.played || len(s.fallback.Rows) == 0 {
			return false
		}
		s.batch = s.fallback.Rows
		s.played = true
		return true
	}
	if s.done || s.err != nil {
		return false
	}
	if s.pending {
		// Grant one credit for the batch just consumed so the server's
		// window keeps sliding.
		s.pending = false
		buf := server.AppendCreditPayload(make([]byte, 0, 16), s.id, 1)
		frame, err := server.AppendBinaryFrame(make([]byte, 0, 32), server.FrameCredit, buf, s.conn.maxFrame)
		if err == nil {
			_, err = s.conn.Write(frame)
		}
		if err != nil {
			s.fail(s.cc.wrapErr(fmt.Errorf("orchestra client: credit: %w", err)))
			return false
		}
	}
	for {
		kind, payload, isBinary, err := s.readFrame()
		if err != nil {
			s.fail(err)
			return false
		}
		s.wireBytes += frameWireSize(payload, isBinary)
		switch kind {
		case server.FrameBatch:
			_, rows, err := server.DecodeBatchPayloadAny(payload)
			if err != nil {
				s.fail(err)
				return false
			}
			s.batch = rows
			s.pending = true
			return true
		case server.FrameEnd:
			_, end, err := server.DecodeEndPayload(payload)
			if err != nil {
				s.fail(err)
				return false
			}
			s.done = true
			s.end = end
			if end.Error != nil {
				s.err = &Error{Code: end.Error.Code, Message: end.Error.Message}
			}
			s.finishConn(true)
			return false
		default:
			s.fail(fmt.Errorf("orchestra client: unexpected %v frame mid-stream", kind))
			return false
		}
	}
}

// fail records the stream's terminal error; the connection is dirty.
func (s *Stream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.done = true
	s.finishConn(false)
}

func (s *Stream) finishConn(keep bool) {
	if s.cc != nil {
		s.cc.finish(s.c, keep)
		s.cc = nil
	}
}

// Batch returns the current batch of rows (valid until the next call to
// Next). Row values are int64, float64, or string.
func (s *Stream) Batch() [][]any { return s.batch }

// Columns returns the result column names (available immediately).
func (s *Stream) Columns() []string {
	if s.fallback != nil {
		return s.fallback.Columns
	}
	return s.cols
}

// Err returns the stream's terminal error, if any.
func (s *Stream) Err() error { return s.err }

// Cancel abandons a stream in flight while keeping the connection (and
// its negotiated protocol state) usable: it sends a cancel frame, then
// drains frames until the server's terminal End arrives. The server
// stops emitting batches and returns the query's admission slot. After a
// clean cancel, Err reports nil and the connection returns to the pool.
// Cancelling a finished or fallback stream is a no-op.
func (s *Stream) Cancel() error {
	if s.fallback != nil || s.done {
		return nil
	}
	if s.cc.ctx.Err() != nil {
		// The caller's context is already gone: the watchdog forced the
		// connection deadline, so a cancel round-trip would only delay.
		// Drop the connection instead of draining.
		s.fail(s.cc.wrapErr(errors.New("orchestra client: stream closed before end")))
		return nil
	}
	buf := server.AppendCancelPayload(make([]byte, 0, 8), s.id)
	frame, err := server.AppendBinaryFrame(make([]byte, 0, 16), server.FrameCancel, buf, s.conn.maxFrame)
	if err == nil {
		_, err = s.conn.Write(frame)
	}
	if err != nil {
		s.fail(s.cc.wrapErr(fmt.Errorf("orchestra client: cancel: %w", err)))
		return s.err
	}
	// Bound the drain so a wedged server cannot hold the caller: the
	// caller's own deadline when one is set, else the client's
	// DialTimeout (the server acks promptly — End follows at most a
	// window of batches).
	drainBy := time.Now().Add(s.c.opts.DialTimeout)
	if dl, ok := s.cc.ctx.Deadline(); ok && dl.Before(drainBy) {
		drainBy = dl
	}
	s.conn.SetDeadline(drainBy)
	for {
		kind, payload, isBinary, err := s.readFrame()
		if err != nil {
			s.fail(err)
			return s.err
		}
		s.wireBytes += frameWireSize(payload, isBinary)
		switch kind {
		case server.FrameBatch:
			// Discard: in-flight batches the server sent before seeing the
			// cancel. No credits are granted — the server is past waiting.
		case server.FrameEnd:
			_, end, err := server.DecodeEndPayload(payload)
			if err != nil {
				s.fail(err)
				return s.err
			}
			s.done = true
			s.end = end
			if end.Error != nil && end.Error.Code != server.CodeCancelled {
				// The query failed for its own reasons before the cancel
				// landed; surface that, not the cancellation.
				s.err = &Error{Code: end.Error.Code, Message: end.Error.Message}
			}
			s.finishConn(true)
			return s.err
		default:
			s.fail(fmt.Errorf("orchestra client: unexpected %v frame draining cancelled stream", kind))
			return s.err
		}
	}
}

// Close releases the stream's connection. A binary stream abandoned
// before its End frame is cancelled first (see Cancel), so the
// connection usually survives into the pool; if the cancel itself fails
// the connection is dropped. Fully consumed streams return their
// connection directly. Close is idempotent.
func (s *Stream) Close() error {
	if !s.done && s.fallback == nil && s.cc != nil {
		return s.Cancel()
	}
	if !s.done {
		s.done = true
		if s.err == nil {
			s.err = errors.New("orchestra client: stream closed before end")
		}
		s.finishConn(false)
	}
	return nil
}

// Streamed reports whether the result arrived as binary batch frames
// (false: buffered JSON fallback).
func (s *Stream) Streamed() bool { return s.streamed }

// Endpoint returns the address of the endpoint serving this stream (""
// for buffered fallback streams).
func (s *Stream) Endpoint() string { return s.endpoint }

// WireBytes returns the bytes of response frames consumed so far.
func (s *Stream) WireBytes() int64 { return s.wireBytes }

// tail accessors are valid after Next has returned false with nil Err.

// Epoch returns the snapshot epoch the query executed against.
func (s *Stream) Epoch() uint64 {
	if s.fallback != nil {
		return s.fallback.Epoch
	}
	if s.end != nil {
		return s.end.Epoch
	}
	return 0
}

// Cached reports a materialized-view cache hit.
func (s *Stream) Cached() bool {
	if s.fallback != nil {
		return s.fallback.Cached
	}
	return s.end != nil && s.end.Cached
}

// Phases returns 1 + incremental recovery invocations.
func (s *Stream) Phases() uint32 {
	if s.fallback != nil {
		return s.fallback.Phases
	}
	if s.end != nil {
		return s.end.Phases
	}
	return 0
}

// Restarts counts full restarts performed.
func (s *Stream) Restarts() int {
	if s.fallback != nil {
		return s.fallback.Restarts
	}
	if s.end != nil {
		return s.end.Restarts
	}
	return 0
}

// Plan returns the optimizer explanation (when Explain was requested).
func (s *Stream) Plan() string {
	if s.fallback != nil {
		return s.fallback.Plan
	}
	if s.end != nil {
		return s.end.Plan
	}
	return ""
}

// TraceID identifies the traced execution (when Trace was requested).
func (s *Stream) TraceID() string {
	if s.fallback != nil {
		return s.fallback.TraceID
	}
	if s.end != nil {
		return s.end.TraceID
	}
	return ""
}

// Trace returns the query's span tree (when Trace was requested).
func (s *Stream) Trace() *TraceSpan {
	if s.fallback != nil {
		return s.fallback.Trace
	}
	if s.end != nil {
		return s.end.Trace
	}
	return nil
}

// TotalRows returns the stream's total row count as reported by the
// server's End frame (0 for buffered fallback streams, where Batch
// carries the whole answer).
func (s *Stream) TotalRows() int64 {
	if s.end != nil {
		return s.end.Rows
	}
	return 0
}

// TotalBatches returns how many batch frames the server sent.
func (s *Stream) TotalBatches() int {
	if s.end != nil {
		return s.end.Batches
	}
	return 0
}

// StreamedRows returns how many result rows the server emitted *during*
// execution — nonzero exactly when the query ran on the server's
// streaming pushdown path (first batch before the collect), zero when
// the answer was collected first. Valid after Next returns false.
func (s *Stream) StreamedRows() int64 {
	if s.end != nil {
		return s.end.Streamed
	}
	return 0
}

// Relation describes one catalog entry.
type Relation = server.RelationInfo

// Schema fetches one relation's catalog entry.
func (c *Client) Schema(ctx context.Context, relation string) (*Relation, error) {
	resp, _, err := c.roundTrip(ctx, &server.Request{
		Op:     server.OpSchema,
		Schema: &server.SchemaRequest{Relation: relation},
	})
	if err != nil {
		return nil, err
	}
	if resp.Schema == nil || len(resp.Schema.Relations) == 0 {
		return nil, &Error{Code: server.CodeNotFound, Message: "relation " + relation}
	}
	return &resp.Schema.Relations[0], nil
}

// Catalog lists all relations the server knows about.
func (c *Client) Catalog(ctx context.Context) ([]Relation, error) {
	resp, _, err := c.roundTrip(ctx, &server.Request{Op: server.OpSchema, Schema: &server.SchemaRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.Schema == nil {
		return nil, nil
	}
	return resp.Schema.Relations, nil
}

// Status is the server's identity and load counters.
type Status = server.StatusResponse

// Status fetches the server's status/stats snapshot.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	resp, _, err := c.roundTrip(ctx, &server.Request{Op: server.OpStatus})
	if err != nil {
		return nil, err
	}
	if resp.Status == nil {
		return nil, fmt.Errorf("orchestra client: malformed response (no status payload)")
	}
	return resp.Status, nil
}

// TraceDump is the server's slow-query log with full span trees.
type TraceDump = server.TraceResponse

// Traces fetches the server's slow-query log: every logged entry with
// its complete span tree, oldest first.
func (c *Client) Traces(ctx context.Context) (*TraceDump, error) {
	resp, _, err := c.roundTrip(ctx, &server.Request{Op: server.OpTrace})
	if err != nil {
		return nil, err
	}
	if resp.Trace == nil {
		return nil, fmt.Errorf("orchestra client: malformed response (no trace payload)")
	}
	return resp.Trace, nil
}
