package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
)

// TestBinaryPublishEndToEnd publishes through the negotiated binary
// batch frame (the default against this server) and reads the rows back,
// covering server-side type coercion of typed batches (ints into a float
// column) and the JSON fallback for rows the batch codec cannot carry
// (mixed value types within one column).
func TestBinaryPublishEndToEnd(t *testing.T) {
	_, srv := serveCluster(t, 1, orchestra.ServeOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create(ctx, "bp", []string{"item:string", "qty:int", "price:float"}, "item"); err != nil {
		t.Fatal(err)
	}

	// Homogeneous columns: crosses the wire as one typed batch frame.
	// The price column is fed ints — the server coerces them onto float.
	if _, err := cl.Publish(ctx, "bp", [][]any{
		{"bolt", 90, 10},
		{"nut", 120, 25},
	}); err != nil {
		t.Fatalf("binary publish: %v", err)
	}
	// Mixed types within the price column: the batch codec cannot carry
	// it, so the client transparently falls back to the JSON request.
	if _, err := cl.Publish(ctx, "bp", [][]any{
		{"washer", 7, 1},
		{"screw", 55, 2.5},
	}); err != nil {
		t.Fatalf("fallback publish: %v", err)
	}

	res, err := cl.Query(ctx, "SELECT item, qty, price FROM bp WHERE qty >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	prices := map[string]float64{}
	for _, r := range res.Rows {
		prices[r[0].(string)] = r[2].(float64)
	}
	want := map[string]float64{"bolt": 10, "nut": 25, "washer": 1, "screw": 2.5}
	for item, p := range want {
		if prices[item] != p {
			t.Fatalf("item %q price %v, want %v (all: %v)", item, prices[item], p, prices)
		}
	}

	// A typed batch violating the schema (string into an int column)
	// surfaces the server's bad_request, not a torn connection.
	if _, err := cl.Publish(ctx, "bp", [][]any{{"bad", "not-an-int", 1.0}}); err == nil {
		t.Fatal("schema-violating publish succeeded")
	} else if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("schema-violating publish: %v", err)
	}
	// The connection survives the rejected publish.
	if _, err := cl.Query(ctx, "SELECT item FROM bp WHERE qty = 90"); err != nil {
		t.Fatalf("query after rejected publish: %v", err)
	}
}

// TestStreamedLimitQuery drives a LIMIT query through the streamed wire
// path end to end (the limit-only pushdown completes collection early
// server-side; the stream must still deliver exactly N rows).
func TestStreamedLimitQuery(t *testing.T) {
	c, srv := serveCluster(t, 1, orchestra.ServeOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.CreateRelation(orchestra.NewSchema("lim", "k:string", "v:int").Key("k")); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rows := make([][]any, 0, 3000)
	for i := 0; i < 3000; i++ {
		rows = append(rows, []any{item(i), i})
	}
	for lo := 0; lo < len(rows); lo += 500 {
		if _, err := cl.Publish(ctx, "lim", rows[lo:lo+500]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Query(ctx, "SELECT k, v FROM lim WHERE v >= 0 LIMIT 37")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed {
		t.Fatal("result did not stream")
	}
	if len(res.Rows) != 37 {
		t.Fatalf("LIMIT 37 delivered %d rows", len(res.Rows))
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		k := r[0].(string)
		if seen[k] {
			t.Fatalf("duplicate key %q in limited answer", k)
		}
		seen[k] = true
	}
}

func item(i int) string {
	const digits = "0123456789"
	return "k" + string([]byte{
		digits[i/1000%10], digits[i/100%10], digits[i/10%10], digits[i%10],
	})
}
