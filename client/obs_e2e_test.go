package client_test

// The served observability surface end to end: traced queries over the
// wire (buffered and streamed), the slow-query log and trace op, the
// status op's quantiles and cache counters, and the ops HTTP endpoint's
// Prometheus metrics.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
)

func seedObsCluster(t *testing.T, srv *orchestra.Server) *client.Client {
	t.Helper()
	ctx := context.Background()
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Create(ctx, "obs", []string{"k:string", "v:int"}, "k"); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 200)
	for i := range rows {
		rows[i] = []any{fmt.Sprintf("k%03d", i), i}
	}
	if _, err := cl.Publish(ctx, "obs", rows); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestTracedQueryOverWire: a traced wire query returns its span tree on
// both response paths, and an untraced one stays clean even while the
// server is force-tracing for its slow-query log.
func TestTracedQueryOverWire(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{
		SlowQueryThreshold: time.Nanosecond, // every query qualifies
	})
	cl := seedObsCluster(t, srv)
	ctx := context.Background()

	res, err := cl.QueryOpts(ctx, "SELECT k, v FROM obs WHERE v < 150", client.QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 150 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if len(res.TraceID) != 16 || res.Trace == nil || res.Trace.Name != "query" {
		t.Fatalf("trace id %q, trace %+v", res.TraceID, res.Trace)
	}
	var frag, shipped int64
	for _, sp := range res.Trace.Children {
		if sp.Name == "fragment" {
			frag++
			shipped += sp.Rows
		}
	}
	if frag != 2 || shipped != int64(len(res.Rows)) {
		t.Fatalf("%d fragment spans shipping %d rows, want 2 shipping %d", frag, shipped, len(res.Rows))
	}

	// Streamed path: the trace arrives in the stream's tail.
	st, err := cl.QueryStream(ctx, "SELECT k, v FROM obs WHERE v < 150", client.QueryOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st.Next() {
		n += len(st.Batch())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("streamed rows: %d", n)
	}
	if st.TraceID() == "" || st.Trace() == nil {
		t.Fatalf("streamed trace lost: id %q trace %v", st.TraceID(), st.Trace())
	}

	// The server force-traces for its slow log but must strip that trace
	// from responses the client didn't ask to be traced.
	plain, err := cl.Query(ctx, "SELECT k FROM obs WHERE v < 10")
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceID != "" || plain.Trace != nil {
		t.Fatalf("untraced query leaked the forced trace: %q", plain.TraceID)
	}
}

// TestStatusTraceAndMetricsOps: the status op reports latency quantiles,
// cache counters, and slow-query summaries; the trace op returns full
// span trees; the ops HTTP listener serves per-op Prometheus histograms.
func TestStatusTraceAndMetricsOps(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{
		SlowQueryThreshold: time.Nanosecond,
		OpsAddr:            "127.0.0.1:0",
	})
	cl := seedObsCluster(t, srv)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(ctx, "SELECT k FROM obs WHERE v < 100"); err != nil {
			t.Fatal(err)
		}
	}

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	q := st.Ops["query"]
	if q.Count < 3 {
		t.Fatalf("query op count %d, want >= 3", q.Count)
	}
	if q.P50Us <= 0 || q.P50Us > q.P95Us || q.P95Us > q.P99Us || q.P99Us > q.MaxUs {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", q.P50Us, q.P95Us, q.P99Us, q.MaxUs)
	}
	if pages, ok := st.Caches["pages"]; !ok || pages.Hits+pages.Misses == 0 {
		t.Fatalf("page-cache counters missing or idle: %+v", st.Caches)
	}
	if len(st.SlowQueries) == 0 {
		t.Fatal("slow-query log empty at a 1ns threshold")
	}
	for _, sq := range st.SlowQueries {
		if sq.Trace != nil {
			t.Fatal("status op must carry trace-stripped slow-query summaries")
		}
		if sq.SQL == "" || sq.DurUs < 0 {
			t.Fatalf("malformed slow-query summary: %+v", sq)
		}
	}

	// The trace op returns the same entries with their span trees.
	dump, err := cl.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("trace op returned no entries")
	}
	traced := 0
	for _, e := range dump.Entries {
		if e.Trace != nil {
			traced++
			if len(e.TraceID) != 16 {
				t.Fatalf("slow query with trace but bad id %q", e.TraceID)
			}
		}
	}
	if traced == 0 {
		t.Fatal("no slow-query entry kept its span tree")
	}

	// Ops HTTP endpoint: Prometheus text metrics with per-op histograms.
	if srv.OpsAddr() == "" {
		t.Fatal("ops listener not started")
	}
	httpRes, err := http.Get("http://" + srv.OpsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(httpRes.Body)
	httpRes.Body.Close()
	if err != nil || httpRes.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", httpRes.StatusCode, err)
	}
	text := string(body)
	for _, want := range []string{
		`orchestra_op_duration_us_bucket{op="query",le="`,
		`orchestra_op_duration_us_count{op="query"}`,
		`orchestra_op_duration_us{op="query",quantile="0.99"}`,
		`orchestra_op_errors_total{op="query"}`,
		`orchestra_cache_hits{cache="pages"}`,
		"orchestra_connections",
		"orchestra_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// pprof rides on the same listener.
	pp, err := http.Get("http://" + srv.OpsAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", pp.StatusCode)
	}
}

// TestStreamedQueryObservability: queries that stream during execution
// must be fully visible in the observability surface — streamed-rows
// counters and first-batch latency in status and /metrics, and real row
// counts (not zero) in the slow-query log, which used to only count
// buffered responses.
func TestStreamedQueryObservability(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{
		SlowQueryThreshold: time.Nanosecond, // every query qualifies
		OpsAddr:            "127.0.0.1:0",
	})
	cl := seedObsCluster(t, srv)
	ctx := context.Background()

	const sql = "SELECT k, v FROM obs"
	st, err := cl.QueryStream(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for st.Next() {
		rows += len(st.Batch())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 200 || st.StreamedRows() != 200 {
		t.Fatalf("rows=%d streamed=%d, want 200/200", rows, st.StreamedRows())
	}
	st.Close()

	status, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Streams == nil {
		t.Fatal("status carries no stream stats after a streamed query")
	}
	if status.Streams.Queries < 1 || status.Streams.Rows < 200 {
		t.Fatalf("stream stats %+v, want >=1 query / >=200 rows", status.Streams)
	}
	if status.Streams.FirstBatchP50Us < 0 || status.Streams.FirstBatchMaxUs < status.Streams.FirstBatchP50Us {
		t.Fatalf("first-batch quantiles not monotone: %+v", status.Streams)
	}

	// The slow-query entry for the streamed query must report the rows
	// it actually emitted.
	found := false
	for _, sq := range status.SlowQueries {
		if sq.SQL != sql {
			continue
		}
		found = true
		if sq.Rows != 200 {
			t.Fatalf("slow-query entry for streamed query has rows=%d, want 200", sq.Rows)
		}
	}
	if !found {
		t.Fatalf("streamed query missing from slow-query log: %+v", status.SlowQueries)
	}

	httpRes, err := http.Get("http://" + srv.OpsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(httpRes.Body)
	httpRes.Body.Close()
	if err != nil || httpRes.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", httpRes.StatusCode, err)
	}
	text := string(body)
	for _, want := range []string{
		"orchestra_query_first_batch_us_bucket",
		"orchestra_query_first_batch_us_count",
		"orchestra_streamed_rows_total",
		"orchestra_streamed_queries_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
