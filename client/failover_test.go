package client_test

import (
	"context"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
)

// twoEndpointCluster serves one embedded cluster on two endpoints.
func twoEndpointCluster(t *testing.T) (*orchestra.Cluster, *orchestra.Server, *orchestra.Server) {
	t.Helper()
	c, err := orchestra.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	srv1, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv1.Close() })
	srv2, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	return c, srv1, srv2
}

// TestMembershipDiscovery: a client dialed at one endpoint learns the
// other from the advertised peer list.
func TestMembershipDiscovery(t *testing.T) {
	_, srv1, srv2 := twoEndpointCluster(t)
	cl, err := client.Dial(srv1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		members := cl.Members()
		if len(members) >= 2 {
			found := false
			for _, m := range members {
				if m == srv2.Addr() {
					found = true
				}
			}
			if found {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("second endpoint never discovered; members = %v", cl.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverOnEndpointLoss: with one endpoint gone hard (closed, new
// dials refused), calls fail over to the surviving endpoint and the
// failover is visible in the client's counters.
func TestFailoverOnEndpointLoss(t *testing.T) {
	c, srv1, srv2 := twoEndpointCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.CreateRelation(orchestra.NewSchema("inv", "item:string", "qty:int").Key("item")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("inv", orchestra.Rows{{"bolt", 90}, {"nut", 120}}); err != nil {
		t.Fatal(err)
	}

	// Seed both endpoints explicitly: no reliance on refresh timing.
	cl, err := client.Dial(srv1.Addr(), client.Options{
		Endpoints:       []string{srv2.Addr()},
		RefreshInterval: -1, // membership is fully seeded; keep the test deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	srv1.Close()

	// Every query must succeed: dial failures against the dead endpoint
	// re-route to the survivor.
	for i := 0; i < 6; i++ {
		res, err := cl.QueryOpts(ctx, "SELECT item, qty FROM inv WHERE qty > 100", client.QueryOptions{})
		if err != nil {
			t.Fatalf("query %d failed despite a live endpoint: %v", i, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("query %d: got %d rows, want 1", i, len(res.Rows))
		}
		if res.Endpoint != srv2.Addr() {
			t.Fatalf("query %d served by %q, want survivor %q", i, res.Endpoint, srv2.Addr())
		}
	}
	// Publishes survive too (dial errors prove non-execution).
	if _, err := cl.Publish(ctx, "inv", [][]any{{"washer", 500}}); err != nil {
		t.Fatalf("publish after endpoint loss: %v", err)
	}
	// The dead endpoint surfaced either as a broken pooled connection
	// (retry + failover) or as a refused dial; both must be counted.
	ctr := cl.Counters()
	if ctr.Retries == 0 && ctr.DialErrors == 0 {
		t.Fatalf("endpoint loss left no trace in counters: %+v", ctr)
	}
	if ctr.Failovers == 0 && ctr.DialErrors == 0 {
		t.Fatalf("no failover recorded: %+v", ctr)
	}
}

// TestDrainingEndpointRedirects: a draining endpoint refuses new work
// with the unavailable code; clients re-route — queries and publishes —
// with zero caller-visible failures, and the publish applies exactly
// once.
func TestDrainingEndpointRedirects(t *testing.T) {
	c, srv1, srv2 := twoEndpointCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.CreateRelation(orchestra.NewSchema("kv", "k:string", "v:int").Key("k")); err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(srv1.Addr(), client.Options{
		Endpoints:       []string{srv2.Addr()},
		RefreshInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Pin the round-robin onto srv1 by exhausting pooled state, then
	// drain srv1: in-flight work finishes, new work re-routes.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for i := 0; i < 4; i++ {
		if _, err := cl.Publish(ctx, "kv", [][]any{{string(rune('a' + i)), i}}); err != nil {
			t.Fatalf("publish %d during drain: %v", i, err)
		}
	}
	res, err := cl.QueryOpts(ctx, "SELECT k, v FROM kv", client.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (drain must not double- or under-apply)", len(res.Rows))
	}
}

// TestQueryStreamSurvivesStartFailure: a stream started against a dead
// endpoint transparently starts on another.
func TestQueryStreamSurvivesStartFailure(t *testing.T) {
	c, srv1, srv2 := twoEndpointCluster(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.CreateRelation(orchestra.NewSchema("s", "k:string", "v:int").Key("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("s", orchestra.Rows{{"x", 1}, {"y", 2}}); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(srv1.Addr(), client.Options{
		Endpoints:       []string{srv2.Addr()},
		RefreshInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv1.Close()

	st, err := cl.QueryStream(ctx, "SELECT k, v FROM s")
	if err != nil {
		t.Fatalf("stream start did not fail over: %v", err)
	}
	defer st.Close()
	rows := 0
	for st.Next() {
		rows += len(st.Batch())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Fatalf("got %d rows, want 2", rows)
	}
	if st.Endpoint() != srv2.Addr() {
		t.Fatalf("stream served by %q, want %q", st.Endpoint(), srv2.Addr())
	}
}
