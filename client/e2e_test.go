package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
)

func serveCluster(t *testing.T, nodes int, opts orchestra.ServeOptions) (*orchestra.Cluster, *orchestra.Server) {
	t.Helper()
	c, err := orchestra.NewCluster(nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	srv, err := c.Serve("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return c, srv
}

// TestEndToEnd drives a served 3-node cluster through the full client
// surface from many concurrent goroutines: create once, then each
// client publishes its own rows, queries them back, and checks status.
func TestEndToEnd(t *testing.T) {
	_, srv := serveCluster(t, 3, orchestra.ServeOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	setup, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.Create(ctx, "inv", []string{"item:string", "qty:int", "price:float"}, "item"); err != nil {
		t.Fatal(err)
	}

	const clients, rowsEach = 8, 5
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			rows := make([][]any, rowsEach)
			for i := range rows {
				rows[i] = []any{fmt.Sprintf("item-%d-%d", g, i), 100*g + i, 0.5}
			}
			if _, err := cl.Publish(ctx, "inv", rows); err != nil {
				errc <- fmt.Errorf("client %d publish: %w", g, err)
				return
			}
			res, err := cl.Query(ctx, fmt.Sprintf("SELECT item, qty FROM inv WHERE qty >= %d AND qty < %d", 100*g, 100*g+rowsEach))
			if err != nil {
				errc <- fmt.Errorf("client %d query: %w", g, err)
				return
			}
			if len(res.Rows) != rowsEach {
				errc <- fmt.Errorf("client %d: got %d rows, want %d", g, len(res.Rows), rowsEach)
				return
			}
			for _, r := range res.Rows {
				if _, ok := r[0].(string); !ok {
					errc <- fmt.Errorf("client %d: item came back as %T", g, r[0])
					return
				}
				if _, ok := r[1].(int64); !ok {
					errc <- fmt.Errorf("client %d: qty came back as %T", g, r[1])
					return
				}
			}
			st, err := cl.Status(ctx)
			if err != nil {
				errc <- fmt.Errorf("client %d status: %w", g, err)
				return
			}
			if st.Members != 3 {
				errc <- fmt.Errorf("client %d: status members %d, want 3", g, st.Members)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// All 40 rows visible, catalog consistent, counters accounted.
	res, err := setup.Query(ctx, "SELECT item FROM inv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != clients*rowsEach {
		t.Fatalf("total rows %d, want %d", len(res.Rows), clients*rowsEach)
	}
	rel, err := setup.Schema(ctx, "inv")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Columns) != 3 || rel.Keys[0] != "item" || rel.Rows != int64(clients*rowsEach) {
		t.Fatalf("catalog entry: %+v", rel)
	}
	st, err := setup.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Ops["query"].Count; got < clients+1 {
		t.Fatalf("server counted %d queries, want >= %d", got, clients+1)
	}
	if st.Ops["publish"].Count != clients {
		t.Fatalf("server counted %d publishes, want %d", st.Ops["publish"].Count, clients)
	}
}

// TestAdmissionControlBoundsInFlight serves with a limit of 2 and makes
// every execution hold its slot briefly; 8 concurrent clients then
// cannot push the server past 2 in-flight queries, and the peak
// actually reaches the bound.
func TestAdmissionControlBoundsInFlight(t *testing.T) {
	var inFlight, peak, over atomic.Int64
	const limit = 2
	c, srv := serveCluster(t, 3, orchestra.ServeOptions{
		MaxConcurrentQueries: limit,
		OnQueryStart: func() {
			n := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			if n > limit {
				over.Add(1)
			}
			time.Sleep(20 * time.Millisecond)
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	setup, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.Create(ctx, "kv", []string{"k:string", "v:int"}); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Publish(ctx, "kv", [][]any{{"a", 1}, {"b", 2}}); err != nil {
		t.Fatal(err)
	}
	_ = c

	const clients, each = 8, 3
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for i := 0; i < each; i++ {
				if _, err := cl.Query(ctx, "SELECT k, v FROM kv"); err != nil {
					errc <- fmt.Errorf("client %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if over.Load() > 0 {
		t.Fatalf("%d executions ran beyond the admission limit", over.Load())
	}
	if peak.Load() != limit {
		t.Fatalf("peak in-flight %d, want %d (executions never overlapped?)", peak.Load(), limit)
	}
	st, err := setup.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakInFlightQueries != limit || st.MaxConcurrentQueries != limit {
		t.Fatalf("status peak %d / max %d, want %d / %d",
			st.PeakInFlightQueries, st.MaxConcurrentQueries, limit, limit)
	}
}

// TestTypedErrors maps server failures onto the client's sentinel errors.
func TestTypedErrors(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	ctx := context.Background()
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Publish(ctx, "ghost", [][]any{{"x"}}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("publish to unknown relation: %v, want ErrNotFound", err)
	}
	if _, err := cl.Schema(ctx, "ghost"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("schema of unknown relation: %v, want ErrNotFound", err)
	}
	if err := cl.Create(ctx, "bad", []string{"a:notatype"}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("bad column type: %v, want ErrBadRequest", err)
	}
	if err := cl.Create(ctx, "kv", []string{"k:string", "v:int"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "kv", [][]any{{"a", "not-an-int"}}); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("type mismatch: %v, want ErrBadRequest", err)
	}
	var se *client.Error
	_, err = cl.Publish(ctx, "ghost", [][]any{{"x"}})
	if !errors.As(err, &se) || se.Code != "not_found" {
		t.Fatalf("error detail lost: %v", err)
	}
}

// TestContextCancellation: canceling a context (no deadline) unblocks
// an in-flight query promptly instead of waiting out the server.
func TestContextCancellation(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{
		OnQueryStart: func() {
			started <- struct{}{}
			<-release
		},
	})
	defer close(release)
	setup, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	ctxSetup := context.Background()
	if err := setup.Create(ctxSetup, "kv", []string{"k:string", "v:int"}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := setup.Query(ctx, "SELECT k FROM kv")
		errCh <- err
	}()
	<-started // query is executing server-side
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the in-flight query")
	}
}

// TestEpochPinning publishes twice and re-queries the older snapshot
// through the wire.
func TestEpochPinning(t *testing.T) {
	_, srv := serveCluster(t, 2, orchestra.ServeOptions{})
	ctx := context.Background()
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Create(ctx, "kv", []string{"k:string", "v:int"}); err != nil {
		t.Fatal(err)
	}
	e1, err := cl.Publish(ctx, "kv", [][]any{{"a", 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Publish(ctx, "kv", [][]any{{"b", 2}}); err != nil {
		t.Fatal(err)
	}
	cur, err := cl.Query(ctx, "SELECT k FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Rows) != 2 {
		t.Fatalf("current snapshot: %d rows, want 2", len(cur.Rows))
	}
	old, err := cl.QueryOpts(ctx, "SELECT k FROM kv", client.QueryOptions{Epoch: e1})
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Rows) != 1 || old.Epoch != e1 {
		t.Fatalf("pinned snapshot: %d rows at epoch %d, want 1 at %d", len(old.Rows), old.Epoch, e1)
	}
}
