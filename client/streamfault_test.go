package client_test

import (
	"context"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
	"orchestra/internal/netfault"
)

// TestStreamedRowsEndToEnd: a stream-eligible scan reports its rows as
// streamed-during-execution all the way out to the client accessors,
// while a top-K query (collected at the server) reports zero streamed —
// the pushdown classes are visible, and correct, at the wire.
func TestStreamedRowsEndToEnd(t *testing.T) {
	const total = 5000
	_, srv := serveCluster(t, 3, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), total)
	cl, err := client.Dial(srv.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.QueryStream(context.Background(), "SELECT k, v FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for st.Next() {
		rows += len(st.Batch())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != total || st.TotalRows() != total {
		t.Fatalf("rows %d (total %d), want %d", rows, st.TotalRows(), total)
	}
	if st.StreamedRows() != total {
		t.Fatalf("StreamedRows = %d, want %d (scan is stream-eligible)", st.StreamedRows(), total)
	}
	if st.TotalBatches() < 2 {
		t.Fatalf("answer arrived in %d batch(es); expected incremental frames", st.TotalBatches())
	}
	st.Close()

	// ORDER BY + LIMIT takes the top-K pushdown: collected at the
	// initiator, so nothing is streamed during execution.
	st, err = cl.QueryStream(context.Background(), "SELECT k, v FROM wide ORDER BY v DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got []int64
	for st.Next() {
		for _, r := range st.Batch() {
			got = append(got, r[1].(int64))
		}
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("top-K returned %d rows, want 5", len(got))
	}
	for i, v := range got {
		if want := int64(total - 1 - i); v != want {
			t.Fatalf("top-K row %d = %d, want %d", i, v, want)
		}
	}
	if st.StreamedRows() != 0 {
		t.Fatalf("StreamedRows = %d for a top-K query, want 0", st.StreamedRows())
	}
}

// TestStreamMidWireTruncationSurfacesError: the connection is severed
// mid-frame after the client has already consumed streamed batches. The
// stream must end with a non-nil transport error — never a silently
// short result that looks complete.
func TestStreamMidWireTruncationSurfacesError(t *testing.T) {
	const total = 20000
	_, srv := serveCluster(t, 3, orchestra.ServeOptions{})
	seedWide(t, srv.Addr(), total)

	proxy, err := netfault.New("127.0.0.1:0", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cl, err := client.Dial(proxy.Addr(), client.Options{Codec: client.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Throttle forwarding so result frames are still in flight when the
	// truncation is armed below.
	proxy.SetFaults(netfault.Faults{Delay: 2 * time.Millisecond})

	st, err := cl.QueryStream(context.Background(), "SELECT k, grp, v, f FROM wide")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rows := 0
	cut := false
	for st.Next() {
		rows += len(st.Batch())
		if !cut {
			// First frames are in hand; now cut the wire partway through
			// a later frame.
			proxy.SetFaults(netfault.Faults{TruncateAfter: 512})
			cut = true
			time.Sleep(10 * time.Millisecond) // let the RST land before draining buffered frames
		}
	}
	if !cut {
		t.Fatal("stream yielded no batches before the fault could be injected")
	}
	if err := st.Err(); err == nil {
		t.Fatalf("stream ended cleanly with %d/%d rows after a mid-frame RST; want an error", rows, total)
	}
	if rows >= total {
		t.Fatalf("client consumed all %d rows despite the truncation", rows)
	}
}
