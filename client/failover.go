package client

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/server"
)

// newPublishID draws a random nonzero publish idempotency token.
func newPublishID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return mrand.Uint64() | 1
	}
	if id := binary.BigEndian.Uint64(b[:]); id != 0 {
		return id
	}
	return 1
}

// RetryPolicy governs automatic retry of failed calls. Retries target a
// different endpoint than the failed attempt when the member list has
// one, with capped exponential backoff and jitter between attempts.
//
// What retries is decided per failure, not per policy: an endpoint that
// could not be dialed, or that refused with the server's "unavailable"
// code (a proof the request never executed — servers answer it while
// draining), is always safe to retry, any operation included. A
// transport failure after the request may have reached the server
// retries only when re-execution is provably harmless: reads (ping,
// query, schema, status, traces) always; publishes only when both the
// failed and the retry connection negotiated the publish-id extension,
// so the server deduplicates the batch by its ID. Server-side errors
// other than "unavailable" (bad request, not found, timeout, internal)
// never retry — the server decided, re-asking won't change the answer.
type RetryPolicy struct {
	// MaxAttempts caps total attempts per call, first try included
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it (default 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 1s).
	MaxBackoff time.Duration
	// Jitter randomizes each backoff by ±Jitter fraction of its value,
	// decorrelating retry storms (default 0.2; negative disables).
	Jitter float64
}

// normalized fills policy defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = max(time.Second, p.BaseBackoff)
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	return p
}

// backoff computes the delay before retry number n (0-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff << n
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		f := 1 + p.Jitter*(2*mrand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Balance names for Options.Balance.
const (
	// BalanceRoundRobin rotates calls across healthy endpoints (default).
	BalanceRoundRobin = "round-robin"
	// BalanceLeastLoaded picks the healthy endpoint with the fewest
	// connections checked out by this client.
	BalanceLeastLoaded = "least-loaded"
)

// Counters are the client's cumulative failover statistics. Snapshot
// with Client.Counters; useful for load tools and tests asserting that
// fault tolerance actually engaged.
type Counters struct {
	// Attempts counts individual call attempts (retries included).
	Attempts uint64 `json:"attempts"`
	// Retries counts attempts beyond the first.
	Retries uint64 `json:"retries"`
	// Failovers counts retries that switched to a different endpoint.
	Failovers uint64 `json:"failovers"`
	// DialErrors counts failed connection attempts.
	DialErrors uint64 `json:"dial_errors"`
	// Refreshes counts membership refreshes that completed.
	Refreshes uint64 `json:"membership_refreshes"`
}

type counters struct {
	attempts   atomic.Uint64
	retries    atomic.Uint64
	failovers  atomic.Uint64
	dialErrors atomic.Uint64
	refreshes  atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		Attempts:   c.attempts.Load(),
		Retries:    c.retries.Load(),
		Failovers:  c.failovers.Load(),
		DialErrors: c.dialErrors.Load(),
		Refreshes:  c.refreshes.Load(),
	}
}

// Endpoint cooldown after a failure: doubles per consecutive failure.
const (
	epDownBase = 200 * time.Millisecond
	epDownMax  = 5 * time.Second
)

// endpoint is one cluster member: its address, its idle-connection
// pool, and its health bookkeeping.
type endpoint struct {
	addr string

	// out counts connections currently checked out (least-loaded
	// balancing).
	out atomic.Int64

	mu        sync.Mutex
	idle      []*wireConn
	fails     int       // consecutive failures
	downUntil time.Time // cooled down until then after failures
}

func (e *endpoint) isDown(now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return now.Before(e.downUntil)
}

// markDown records a failure: the endpoint is skipped by selection for
// a cooldown that doubles with consecutive failures, and its idle
// connections (sharing the likely-broken path) are dropped.
func (e *endpoint) markDown() {
	e.mu.Lock()
	d := epDownBase << min(e.fails, 10)
	if d <= 0 || d > epDownMax {
		d = epDownMax
	}
	e.fails++
	e.downUntil = time.Now().Add(d)
	idle := e.idle
	e.idle = nil
	e.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

// markUp clears failure state after a successful exchange.
func (e *endpoint) markUp() {
	e.mu.Lock()
	e.fails = 0
	e.downUntil = time.Time{}
	e.mu.Unlock()
}

func (e *endpoint) drop() {
	e.mu.Lock()
	idle := e.idle
	e.idle = nil
	e.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

// pickEndpoint selects the endpoint for the next attempt, skipping
// cooled-down members and (when possible) the endpoint the previous
// attempt failed on. When every candidate is down the least-recently
// failed one is tried anyway — with the whole cluster unreachable,
// cooldowns must not turn into instant failures.
func (c *Client) pickEndpoint(avoid string) *endpoint {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.eps)
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1)-1) % n
	var best, down, avoided *endpoint
	for i := 0; i < n; i++ {
		e := c.eps[(start+i)%n]
		if e.addr == avoid {
			avoided = e
			continue
		}
		if e.isDown(now) {
			if down == nil {
				down = e
			}
			continue
		}
		if c.opts.Balance != BalanceLeastLoaded {
			return e
		}
		if best == nil || e.out.Load() < best.out.Load() {
			best = e
		}
	}
	if best != nil {
		return best
	}
	if down != nil {
		return down
	}
	return avoided
}

// acquire returns a connection to a healthy endpoint, failing over
// across members on dial errors. avoid is the endpoint the previous
// attempt failed on ("" for none).
func (c *Client) acquire(avoid string) (*wireConn, error) {
	c.maybeRefresh()
	var lastErr error
	tried := make(map[string]bool)
	for {
		ep := c.pickEndpoint(avoid)
		if ep == nil || tried[ep.addr] {
			break
		}
		tried[ep.addr] = true
		conn, err := c.acquireOn(ep)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		avoid = "" // widen: any untried endpoint beats failing the call
	}
	if lastErr == nil {
		lastErr = errors.New("orchestra client: no endpoints")
	}
	return nil, lastErr
}

// acquireOn checks a connection out of ep's pool, dialing when the pool
// is empty. Dial failures cool the endpoint down and trigger a
// membership refresh.
func (c *Client) acquireOn(ep *endpoint) (*wireConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("orchestra client: closed")
	}
	c.mu.Unlock()
	ep.mu.Lock()
	if n := len(ep.idle); n > 0 {
		conn := ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		ep.mu.Unlock()
		ep.out.Add(1)
		return conn, nil
	}
	ep.mu.Unlock()
	conn, err := c.dial(ep)
	if err != nil {
		c.ctr.dialErrors.Add(1)
		ep.markDown()
		c.refreshAsync()
		return nil, err
	}
	ep.out.Add(1)
	return conn, nil
}

// release returns a clean connection to its endpoint's pool.
func (c *Client) release(conn *wireConn) {
	ep := conn.ep
	ep.out.Add(-1)
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	ep.mu.Lock()
	if !closed && len(ep.idle) < c.opts.PoolSize {
		ep.idle = append(ep.idle, conn)
		ep.mu.Unlock()
		return
	}
	ep.mu.Unlock()
	conn.Close()
}

// discard closes a connection that must not be reused (frames in
// flight, failed exchange).
func (c *Client) discard(conn *wireConn) {
	conn.ep.out.Add(-1)
	conn.Close()
}

// Members returns the client's current view of the cluster's client
// endpoints (the seed addresses plus whatever membership refreshes
// discovered).
func (c *Client) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.eps))
	for i, e := range c.eps {
		out[i] = e.addr
	}
	return out
}

// Counters returns a snapshot of the client's failover statistics.
func (c *Client) Counters() Counters { return c.ctr.snapshot() }

// maybeRefresh starts a background membership refresh when the last one
// is older than Options.RefreshInterval.
func (c *Client) maybeRefresh() {
	if c.opts.RefreshInterval < 0 {
		return
	}
	c.mu.Lock()
	stale := time.Since(c.lastRefresh) >= c.opts.RefreshInterval
	c.mu.Unlock()
	if stale {
		c.refreshAsync()
	}
}

// refreshAsync refreshes the member list in the background, at most one
// refresh in flight.
func (c *Client) refreshAsync() {
	if c.opts.RefreshInterval < 0 {
		return
	}
	if !c.refreshing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.refreshing.Store(false)
		c.refreshMembers()
	}()
}

// refreshMembers asks one reachable endpoint for the cluster's member
// list (the health op; the status op against servers that predate it)
// and adopts the answer.
func (c *Client) refreshMembers() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.lastRefresh = time.Now()
	eps := append([]*endpoint(nil), c.eps...)
	c.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
	defer cancel()
	for _, ep := range eps {
		if ep.isDown(time.Now()) {
			continue
		}
		peers, err := c.peersOf(ctx, ep)
		if err != nil {
			continue
		}
		if c.adoptPeers(peers) {
			c.ctr.refreshes.Add(1)
		}
		return
	}
}

// peersOf performs one health round trip against ep and returns the
// advertised member list.
func (c *Client) peersOf(ctx context.Context, ep *endpoint) ([]string, error) {
	conn, err := c.acquireOn(ep)
	if err != nil {
		return nil, err
	}
	resp, _, err := c.roundTripOn(ctx, conn, &server.Request{Op: server.OpHealth})
	if err != nil {
		if errors.Is(err, ErrBadRequest) {
			// Pre-health server: the status op carries peers when known.
			conn, err = c.acquireOn(ep)
			if err != nil {
				return nil, err
			}
			resp, _, err = c.roundTripOn(ctx, conn, &server.Request{Op: server.OpStatus})
			if err != nil {
				return nil, err
			}
			if resp.Status == nil {
				return nil, nil
			}
			return resp.Status.Peers, nil
		}
		return nil, err
	}
	if resp.Health == nil {
		return nil, nil
	}
	return resp.Health.Peers, nil
}

// adoptPeers reconciles the member list with an advertised one: new
// endpoints join, endpoints gone from the advertisement leave (their
// pools close), seeds always stay. An empty advertisement is a no-op —
// a backend that doesn't know its peers must not shrink the list.
func (c *Client) adoptPeers(peers []string) bool {
	if len(peers) == 0 {
		return false
	}
	want := make(map[string]bool, len(peers)+len(c.seeds))
	for _, a := range peers {
		want[a] = true
	}
	for _, a := range c.seeds {
		want[a] = true
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	var dropped []*endpoint
	kept := c.eps[:0]
	for _, e := range c.eps {
		if want[e.addr] {
			kept = append(kept, e)
			delete(want, e.addr)
		} else {
			dropped = append(dropped, e)
		}
	}
	c.eps = kept
	for addr := range want {
		c.eps = append(c.eps, &endpoint{addr: addr})
	}
	c.mu.Unlock()
	for _, e := range dropped {
		e.drop()
	}
	return true
}

// Health fetches one endpoint's health snapshot (status "ok" or
// "draining", load, and the advertised member list).
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	resp, _, err := c.roundTrip(ctx, &server.Request{Op: server.OpHealth})
	if err != nil {
		return nil, err
	}
	if resp.Health == nil {
		return nil, fmt.Errorf("orchestra client: malformed response (no health payload)")
	}
	return resp.Health, nil
}

// retryable classifies a failed attempt. proofOfNonExecution reports a
// CodeUnavailable refusal (safe for any op); transport reports an I/O
// failure where the request may have executed (safe for idempotent ops
// only); anything else is terminal.
func classifyFailure(err error) (proofOfNonExecution, transport bool) {
	var we *Error
	if errors.As(err, &we) {
		return we.Code == server.CodeUnavailable, false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false, false
	}
	if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrBinaryUnsupported) {
		return false, false // deterministic; a retry hits the same wall
	}
	return false, true
}

// callMeta reports how a retried call played out, for surfacing in
// results.
type callMeta struct {
	attempts  int
	failovers int
	endpoint  string
}

// withRetry runs fn under the retry policy. fn receives a freshly
// acquired connection and owns it (release or discard through the
// usual paths). idempotent permits retry after transport failures;
// publishGuarded additionally permits it for publishes, provided both
// the failed and the retry connection negotiated publish-id.
func (c *Client) withRetry(ctx context.Context, idempotent, publishGuarded bool, fn func(conn *wireConn) error) (callMeta, error) {
	pol := c.retry
	var meta callMeta
	var lastErr error
	needPubID := false
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.ctr.retries.Add(1)
			select {
			case <-time.After(pol.backoff(attempt - 1)):
			case <-ctx.Done():
				return meta, lastErr
			}
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("orchestra client: %w", err)
			}
			return meta, lastErr
		}
		conn, err := c.acquire(meta.endpoint)
		if err != nil {
			// Nothing reached any server: always safe to continue.
			meta.attempts++
			c.ctr.attempts.Add(1)
			lastErr = err
			continue
		}
		if needPubID && !conn.publishID {
			// The retry target cannot prove idempotency; re-sending could
			// double-apply. Surface the original failure.
			c.release(conn)
			return meta, lastErr
		}
		meta.attempts++
		c.ctr.attempts.Add(1)
		prev := meta.endpoint
		meta.endpoint = conn.ep.addr
		if attempt > 0 && prev != "" && prev != meta.endpoint {
			meta.failovers++
			c.ctr.failovers.Add(1)
		}
		hadPubID := conn.publishID
		err = fn(conn)
		if err == nil {
			conn.ep.markUp()
			return meta, nil
		}
		lastErr = err
		nonExec, transport := classifyFailure(err)
		switch {
		case nonExec:
			// Refused before execution (draining endpoint): cool it down
			// and re-route; every op is safe.
			conn.ep.markDown()
			c.refreshAsync()
		case transport:
			conn.ep.markDown()
			c.refreshAsync()
			if !idempotent {
				if !publishGuarded || !hadPubID {
					return meta, lastErr
				}
				needPubID = true
			}
		default:
			// The server answered: retrying cannot change the outcome.
			return meta, lastErr
		}
	}
	return meta, lastErr
}
