package orchestra

import (
	"fmt"
	"testing"
)

// TestQueryCacheLRURecency: a cache hit refreshes an entry's recency, so
// at capacity the least-recently-*used* entry is evicted, not merely the
// least-recently-inserted one.
func TestQueryCacheLRURecency(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	c.EnableQueryCache(2)

	qA := "SELECT item FROM inv"
	qB := "SELECT qty FROM inv"
	qC := "SELECT price FROM inv"
	mustQuery(t, c, qA)
	mustQuery(t, c, qB)
	// Touch A: it becomes most recent, so B is now the eviction victim.
	if !mustQuery(t, c, qA).Cached {
		t.Fatal("A should hit before eviction")
	}
	mustQuery(t, c, qC) // evicts B, not A
	if !mustQuery(t, c, qA).Cached {
		t.Fatal("recently used entry was evicted")
	}
	if mustQuery(t, c, qB).Cached {
		t.Fatal("least recently used entry survived eviction")
	}
}

// TestQueryCacheEvictionAtCapacity fills the cache past capacity and
// checks only the newest entries remain resident.
func TestQueryCacheEvictionAtCapacity(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	const cap = 3
	c.EnableQueryCache(cap)

	queries := make([]string, 6)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT item FROM inv WHERE qty > %d", i*10)
		mustQuery(t, c, queries[i])
	}
	// Check newest-first: a miss re-inserts and evicts, so older entries
	// must be probed before any miss perturbs the cache contents.
	for i := len(queries) - 1; i >= 0; i-- {
		wantHit := i >= len(queries)-cap
		if got := mustQuery(t, c, queries[i]).Cached; got != wantHit {
			t.Errorf("query %d: cached=%v, want %v", i, got, wantHit)
		}
	}
}

// TestQueryCacheCrossEpoch: a publish advances the epoch, invalidating
// current-epoch lookups while pinned historical epochs keep their own
// entries — both snapshots stay independently cached.
func TestQueryCacheCrossEpoch(t *testing.T) {
	c := newTestCluster(t, 3)
	setupInventory(t, c)
	c.EnableQueryCache(8)

	const q = "SELECT item, qty FROM inv WHERE qty > 100"
	r1 := mustQuery(t, c, q) // miss, cached at epoch e1
	e1 := r1.Epoch

	mustPublish(t, c, "inv", Rows{{"rivet", 500, 0.08}})

	// Current epoch changed: recompute, reflect the new row.
	r2 := mustQuery(t, c, q)
	if r2.Cached {
		t.Fatal("stale entry served across epochs")
	}
	if len(r2.Rows) != len(r1.Rows)+1 {
		t.Fatalf("fresh result has %d rows, want %d", len(r2.Rows), len(r1.Rows)+1)
	}

	// Both epochs now resident under their own keys.
	old, err := c.QueryOpts(q, QueryOptions{Epoch: e1})
	if err != nil {
		t.Fatal(err)
	}
	if !old.Cached || len(old.Rows) != len(r1.Rows) || old.Epoch != e1 {
		t.Fatalf("pinned epoch entry: cached=%v rows=%d epoch=%d", old.Cached, len(old.Rows), old.Epoch)
	}
	cur := mustQuery(t, c, q)
	if !cur.Cached || len(cur.Rows) != len(r2.Rows) {
		t.Fatalf("current epoch entry: cached=%v rows=%d", cur.Cached, len(cur.Rows))
	}

	// Another publish invalidates again.
	mustPublish(t, c, "inv", Rows{{"dowel", 300, 0.20}})
	if mustQuery(t, c, q).Cached {
		t.Fatal("entry survived second epoch advance")
	}
}

// TestQueryCacheRepeatedHits: the Cached flag is false exactly once per
// (query, epoch), then true on every repeat with identical results.
func TestQueryCacheRepeatedHits(t *testing.T) {
	c := newTestCluster(t, 2)
	setupInventory(t, c)
	c.EnableQueryCache(8)

	const q = "SELECT item FROM inv WHERE qty > 50"
	first := mustQuery(t, c, q)
	if first.Cached {
		t.Fatal("first execution reported a cache hit")
	}
	for i := 0; i < 4; i++ {
		r := mustQuery(t, c, q)
		if !r.Cached {
			t.Fatalf("repeat %d missed the cache", i)
		}
		if len(r.Rows) != len(first.Rows) || r.Epoch != first.Epoch {
			t.Fatalf("repeat %d: %d rows at epoch %d, want %d at %d",
				i, len(r.Rows), r.Epoch, len(first.Rows), first.Epoch)
		}
	}
}

// TestQueryCachePerNode: every serving node benefits from the
// materialized-view cache, not just initiator 0 — a node-1 query is
// served from cache (filled by node 1 itself, and shared with node 0
// since entries are epoch-keyed).
func TestQueryCachePerNode(t *testing.T) {
	c := newTestCluster(t, 3)
	setupInventory(t, c)
	c.EnableQueryCache(8)

	const q = "SELECT item, qty FROM inv WHERE qty > 100"
	first, err := c.QueryOpts(q, QueryOptions{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first node-1 execution reported a cache hit")
	}
	hit, err := c.QueryOpts(q, QueryOptions{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("node-1 repeat was not served from cache")
	}
	if len(hit.Rows) != len(first.Rows) || hit.Epoch != first.Epoch {
		t.Fatalf("node-1 hit: %d rows at epoch %d, want %d at %d",
			len(hit.Rows), hit.Epoch, len(first.Rows), first.Epoch)
	}
	// Epoch-keyed sharing: node 0 (and node 2) reuse node 1's entry.
	for _, n := range []int{0, 2} {
		r, err := c.QueryOpts(q, QueryOptions{Node: n})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Cached {
			t.Fatalf("node-%d query missed the shared cache", n)
		}
	}
	// A publish advances the epoch and invalidates every node's view.
	mustPublish(t, c, "inv", Rows{{"rivet", 500, 0.08}})
	r, err := c.QueryOpts(q, QueryOptions{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("node-1 served a stale entry across epochs")
	}
}
