package orchestra_test

// Kill-and-restart end-to-end test: a child process serves a durable
// cluster over the real wire protocol, the parent publishes batches
// through the client, SIGKILLs the child mid-stream, restarts it from
// the same data directory, and verifies that every acknowledged batch
// survived with its full row count and that the recovered epoch covers
// the last acknowledged publish. This is the paper's crash-stop failure
// model applied to the storage layer: an acknowledged publish must never
// be lost (§V).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"orchestra"
	"orchestra/client"
)

const (
	crashChildEnv   = "ORCHESTRA_CRASH_CHILD"
	crashDirEnv     = "ORCHESTRA_CRASH_DIR"
	crashAddrEnv    = "ORCHESTRA_CRASH_ADDRFILE"
	crashBatchRows  = 50
	crashKillAfter  = 15 // acked batches before SIGKILL
	crashMaxBatches = 60
)

// TestCrashServerChild is the re-exec target, not a test: it serves a
// 3-node durable cluster until killed. Skipped in normal runs.
func TestCrashServerChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("re-exec child only")
	}
	dir := os.Getenv(crashDirEnv)
	c, err := orchestra.NewCluster(3,
		orchestra.WithDataDir(dir),
		orchestra.WithSyncMode(orchestra.SyncAlways))
	if err != nil {
		t.Fatalf("child: %v", err)
	}
	srv, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{})
	if err != nil {
		t.Fatalf("child serve: %v", err)
	}
	// The rename publishes the address atomically: the parent never
	// reads a half-written file.
	addrFile := os.Getenv(crashAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr rename: %v", err)
	}
	select {} // serve until SIGKILL
}

// startCrashChild launches the serving child and waits for its address.
func startCrashChild(t *testing.T, dir, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashServerChild$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1", crashDirEnv+"="+dir, crashAddrEnv+"="+addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, string(b)
		}
		if cmd.ProcessState != nil {
			t.Fatal("child exited before serving")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("child never published its address")
	return nil, ""
}

func TestKillAndRestartRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics required")
	}
	if testing.Short() {
		t.Skip("re-exec e2e")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	cmd, addr := startCrashChild(t, dir, addrFile)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl, err := client.Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("dial: %v", err)
	}
	if err := cl.Create(ctx, "crash", []string{"id:int", "batch:int"}, "id"); err != nil {
		cmd.Process.Kill()
		t.Fatalf("create: %v", err)
	}

	// Publish batches from a goroutine; the main goroutine SIGKILLs the
	// server once enough are acknowledged, so the kill lands mid-stream.
	type ack struct {
		batch int
		epoch uint64
	}
	var (
		mu    sync.Mutex
		acked []ack
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b < crashMaxBatches; b++ {
			rows := make([][]any, crashBatchRows)
			for i := range rows {
				rows[i] = []any{int64(b*crashBatchRows + i), int64(b)}
			}
			e, err := cl.Publish(ctx, "crash", rows)
			if err != nil {
				return // the crash: everything after this is unacknowledged
			}
			mu.Lock()
			acked = append(acked, ack{batch: b, epoch: e})
			mu.Unlock()
		}
	}()
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= crashKillAfter {
			break
		}
		select {
		case <-done:
			t.Fatal("publisher finished before the kill threshold")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks run
		t.Fatalf("kill: %v", err)
	}
	<-done
	cmd.Wait()
	cl.Close()
	mu.Lock()
	final := append([]ack(nil), acked...)
	mu.Unlock()
	if len(final) < crashKillAfter {
		t.Fatalf("only %d acked batches before kill", len(final))
	}
	t.Logf("killed server after %d acked batches (last epoch %d)",
		len(final), final[len(final)-1].epoch)

	// Restart from the same directory and measure time to first byte.
	t0 := time.Now()
	cmd2, addr2 := startCrashChild(t, dir, addrFile)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	cl2, err := client.Dial(addr2)
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	defer cl2.Close()
	st, err := cl2.Status(ctx)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	recovery := time.Since(t0)

	lastAck := final[len(final)-1]
	if st.Epoch < lastAck.epoch {
		t.Errorf("recovered epoch %d < last acknowledged publish epoch %d", st.Epoch, lastAck.epoch)
	}
	if st.Durability == nil {
		t.Error("status after restart reports no durability stats")
	}
	for _, a := range final {
		res, err := cl2.Query(ctx, fmt.Sprintf(
			"SELECT COUNT(*) FROM crash WHERE batch = %d", a.batch))
		if err != nil {
			t.Fatalf("count batch %d: %v", a.batch, err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Fatalf("count batch %d: unexpected shape %v", a.batch, res.Rows)
		}
		if got := countValue(res.Rows[0][0]); got != crashBatchRows {
			t.Errorf("acknowledged batch %d: %d rows survived, want %d", a.batch, got, crashBatchRows)
		}
	}
	// The per-relation row-count statistic must survive the restart:
	// it is persisted in the catalog record and restored by recovery,
	// so the optimizer costs plans from real cardinalities instead of
	// zeros. Acked rows are the floor; the killed-mid-stream publish
	// may have committed without its acknowledgement.
	rel, err := cl2.Schema(ctx, "crash")
	if err != nil {
		t.Fatalf("schema after restart: %v", err)
	}
	if want := int64(len(final) * crashBatchRows); rel.Rows < want {
		t.Errorf("row-count stat after restart = %d, want >= %d (acked rows)", rel.Rows, want)
	}
	t.Logf("recovered %d acked batches in %s (epoch %d, row stat %d)",
		len(final), recovery, st.Epoch, rel.Rows)

	if out := os.Getenv("CRASH_BENCH_OUT"); out != "" {
		rec := map[string]any{
			"bench":         "crash_recovery",
			"acked_batches": len(final),
			"rows":          len(final) * crashBatchRows,
			"recovery_ms":   recovery.Milliseconds(),
			"epoch":         st.Epoch,
		}
		if b, err := json.Marshal(rec); err == nil {
			f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err == nil {
				fmt.Fprintln(f, string(b))
				f.Close()
			}
		}
	}
}

// TestDurabilityObservability verifies a served durable cluster surfaces
// its WAL/recovery counters through both ops surfaces: the status op
// (StatusResponse.Durability) and the Prometheus /metrics listener.
func TestDurabilityObservability(t *testing.T) {
	c, err := orchestra.NewCluster(1,
		orchestra.WithDataDir(t.TempDir()),
		orchestra.WithSyncMode(orchestra.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.CreateRelation(orchestra.NewSchema("d", "k:string", "v:int").Key("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish("d", orchestra.Rows{{"a", 1}, {"b", 2}}); err != nil {
		t.Fatal(err)
	}
	srv, err := c.Serve("127.0.0.1:0", orchestra.ServeOptions{OpsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil {
		t.Fatal("status of a durable node carries no durability stats")
	}
	if st.Durability.Fsyncs == 0 {
		t.Error("SyncAlways node reports zero fsyncs after a publish")
	}
	if st.Durability.Epoch == 0 {
		t.Error("durability stats report epoch 0 after a publish")
	}

	resp, err := http.Get("http://" + srv.OpsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"orchestra_wal_fsyncs_total",
		"orchestra_wal_fsync_us",
		"orchestra_wal_group_commit_records",
		"orchestra_wal_bytes",
		"orchestra_store_epoch",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// A volatile cluster must not claim durability.
	mem, err := orchestra.NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Shutdown()
	if _, ok := mem.DurabilityStats(0); ok {
		t.Error("in-memory cluster claims durability stats")
	}
}

// countValue unboxes COUNT(*)'s wire value (int64 natively, float64
// after a JSON round-trip).
func countValue(v any) int {
	switch x := v.(type) {
	case int64:
		return int(x)
	case float64:
		return int(x)
	case int:
		return x
	}
	return -1
}
