package orchestra_test

// Rejoin end-to-end test: a real three-process cluster (one cluster.Node
// per process over TCP, each with a durable store and an anti-entropy
// loop) runs an idempotent query workload while one member is SIGKILLed
// mid-workload, a backlog is published without it, and the process is
// restarted from its data directory. The rejoined node must reach the
// cluster's epoch by replaying its peers' shipped WAL suffix — no state
// transfer, no rebalance — while the workload sees zero failures, and
// its own endpoint must then serve correct answers. Set REJOIN_BACKLOG
// to size the missed backlog (rows); CRASH_BENCH_OUT records the
// catch-up time.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"orchestra/client"
	"orchestra/internal/cluster"
	"orchestra/internal/engine"
	"orchestra/internal/kvstore"
	"orchestra/internal/ring"
	"orchestra/internal/server"
	"orchestra/internal/transport"
)

const (
	rejoinChildEnv  = "ORCHESTRA_REJOIN_CHILD"
	rejoinListenEnv = "ORCHESTRA_REJOIN_LISTEN"
	rejoinPeersEnv  = "ORCHESTRA_REJOIN_PEERS"
	rejoinDataEnv   = "ORCHESTRA_REJOIN_DATA"
	rejoinAddrEnv   = "ORCHESTRA_REJOIN_ADDRFILE"
)

// TestRejoinNodeChild is the re-exec target, not a test: one storage
// node of a real TCP cluster, serving clients on an ephemeral port.
// Skipped in normal runs.
func TestRejoinNodeChild(t *testing.T) {
	if os.Getenv(rejoinChildEnv) == "" {
		t.Skip("re-exec child only")
	}
	listen := os.Getenv(rejoinListenEnv)
	var ids []ring.NodeID
	for _, p := range strings.Split(os.Getenv(rejoinPeersEnv), ",") {
		if p = strings.TrimSpace(p); p != "" {
			ids = append(ids, ring.NodeID(p))
		}
	}
	table, err := ring.New(ids, ring.Balanced, 3)
	if err != nil {
		t.Fatalf("child table: %v", err)
	}
	ep, err := transport.ListenTCP(listen)
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	// SyncNever: the OS page cache survives a SIGKILL, which is the only
	// crash this test injects, and the workload publishes fast. Retention
	// is sized so even the benchmark-scale backlog (REJOIN_BACKLOG=50000)
	// stays within the peers' shipped logs — the point of the test is the
	// WAL catch-up path, not the truncation fallback.
	store, err := kvstore.Open(os.Getenv(rejoinDataEnv), kvstore.Options{
		Sync:        kvstore.SyncNever,
		RetainBytes: 512 << 20,
	})
	if err != nil {
		t.Fatalf("child store: %v", err)
	}
	node := cluster.NewNode(ep, store, table, cluster.Config{Replication: 3})
	eng := engine.New(node)
	node.Gossip().Start(200 * time.Millisecond)
	// A (re)joining node repairs before serving: at first boot this
	// initializes the per-peer markers while every store is still empty,
	// and at rejoin it replays the missed WAL suffix so the first answer
	// this node serves is already at the cluster's epoch. Peers may not
	// be up yet during the staggered initial start — the background
	// anti-entropy loop retries.
	rctx, rcancel := context.WithTimeout(context.Background(), time.Minute)
	if err := node.Repair(rctx); err != nil {
		fmt.Fprintf(os.Stderr, "child %s startup repair: %v\n", listen, err)
	}
	rcancel()
	node.StartRepair(300 * time.Millisecond)
	srv, err := server.Start("127.0.0.1:0", server.NewNodeBackend(node, eng), server.Config{})
	if err != nil {
		t.Fatalf("child serve: %v", err)
	}
	addrFile := os.Getenv(rejoinAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr().String()), 0o644); err != nil {
		t.Fatalf("child addr file: %v", err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatalf("child addr rename: %v", err)
	}
	select {} // serve until SIGKILL
}

// rejoinChild is one re-exec'd node process.
type rejoinChild struct {
	cmd       *exec.Cmd
	serveAddr string
	done      chan struct{}
}

func startRejoinChild(t *testing.T, idx int, listen, peers, data, addrFile string) *rejoinChild {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run=^TestRejoinNodeChild$")
	cmd.Env = append(os.Environ(),
		rejoinChildEnv+"=1",
		rejoinListenEnv+"="+listen,
		rejoinPeersEnv+"="+peers,
		rejoinDataEnv+"="+data,
		rejoinAddrEnv+"="+addrFile)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	cmd.SysProcAttr = childSysProcAttr()
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child %d: %v", idx, err)
	}
	ch := &rejoinChild{cmd: cmd, done: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(ch.done)
	}()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			ch.serveAddr = string(b)
			return ch
		}
		select {
		case <-ch.done:
			t.Fatalf("child %d exited before serving", idx)
		default:
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("child %d never published its address", idx)
	return nil
}

func TestRejoinCatchUp(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics required")
	}
	if testing.Short() {
		t.Skip("re-exec e2e")
	}
	backlog := 2000
	if s := os.Getenv("REJOIN_BACKLOG"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad REJOIN_BACKLOG %q", s)
		}
		backlog = n
	}
	dir := t.TempDir()
	clusterAddrs := make([]string, 3)
	for i := range clusterAddrs {
		clusterAddrs[i] = reservePort(t)
	}
	peers := strings.Join(clusterAddrs, ",")

	children := make([]*rejoinChild, 3)
	for i := range children {
		ch := startRejoinChild(t, i, clusterAddrs[i], peers,
			filepath.Join(dir, fmt.Sprintf("node%d", i)),
			filepath.Join(dir, fmt.Sprintf("serve%d", i)))
		children[i] = ch
		t.Cleanup(func() {
			ch.cmd.Process.Kill()
			<-ch.done
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl, err := client.Dial(children[0].serveAddr, client.Options{
		Endpoints:   []string{children[1].serveAddr},
		DialTimeout: 2 * time.Second,
		Retry: client.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 15 * time.Millisecond,
			MaxBackoff:  250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Create(ctx, "rejoin", []string{"id:int", "shard:int"}, "id"); err != nil {
		t.Fatalf("create: %v", err)
	}

	const batchRows = 500
	total := 0
	var wmu sync.Mutex // guards total (and the workload counters below)
	var lastEpoch uint64
	publish := func(batches int) {
		t.Helper()
		for b := 0; b < batches; b++ {
			rows := make([][]any, batchRows)
			for i := range rows {
				rows[i] = []any{int64(total + i), int64((total + i) % 7)}
			}
			bt := time.Now()
			e, err := cl.Publish(ctx, "rejoin", rows)
			if err != nil {
				t.Fatalf("publish: %v", err)
			}
			if d := time.Since(bt); d > 500*time.Millisecond {
				t.Logf("slow publish batch (epoch %d): %s", e, d)
			}
			lastEpoch = e
			wmu.Lock()
			total += batchRows
			wmu.Unlock()
		}
	}
	publish(2) // seed rows before any chaos

	// Idempotent closed-loop workload against the surviving endpoints:
	// any client-visible failure under the kill/rejoin chaos fails the
	// test. Answers are validated against the count published by then
	// (reads are snapshot-epoch pinned, so a count can trail but never
	// exceed the acknowledged total).
	var (
		failures []error
		queries  int
	)
	// Each probe is a full-table COUNT, so its cost grows with the rows
	// published; pace large-backlog (benchmark) runs so the probes stay a
	// background load instead of saturating the surviving nodes.
	probeEvery := 10 * time.Millisecond
	if backlog > 5000 {
		probeEvery = 250 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				wmu.Lock()
				limit := total
				wmu.Unlock()
				res, err := cl.Query(ctx, "SELECT COUNT(*) FROM rejoin")
				if err == nil {
					if len(res.Rows) != 1 {
						err = fmt.Errorf("bad shape: %v", res.Rows)
					} else if got := countValue(res.Rows[0][0]); got > limit+batchRows || got <= 0 {
						err = fmt.Errorf("impossible count %d (published %d)", got, limit)
					}
				}
				wmu.Lock()
				queries++
				if err != nil {
					failures = append(failures, err)
				}
				wmu.Unlock()
				time.Sleep(probeEvery)
			}
		}()
	}

	// SIGKILL node 2 mid-workload, then publish the backlog without it.
	time.Sleep(300 * time.Millisecond)
	if err := children[2].cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child 2: %v", err)
	}
	<-children[2].done
	t.Logf("killed node 2; publishing %d-row backlog without it", backlog)
	publish((backlog + batchRows - 1) / batchRows)

	// Restart from the same data directory under the same identity and
	// time its way back to the cluster's epoch with zero shipping lag.
	t0 := time.Now()
	ch2 := startRejoinChild(t, 2, clusterAddrs[2], peers,
		filepath.Join(dir, "node2"),
		filepath.Join(dir, "serve2"))
	t.Cleanup(func() {
		ch2.cmd.Process.Kill()
		<-ch2.done
	})
	cl2, err := client.Dial(ch2.serveAddr)
	if err != nil {
		t.Fatalf("dial rejoined node: %v", err)
	}
	defer cl2.Close()

	var st *server.StatusResponse
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st, err = cl2.Status(ctx)
		if err == nil && st.Replication != nil &&
			st.Replication.MaxLag == 0 && st.Replication.CatchUpRecords > 0 &&
			st.Epoch >= lastEpoch {
			break
		}
		if time.Now().After(deadline) {
			var repl []byte
			if st != nil && st.Replication != nil {
				repl, _ = json.Marshal(st.Replication)
			}
			t.Fatalf("node 2 never caught up: err=%v repl=%s status=%+v", err, repl, st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	catchUp := time.Since(t0)
	if st.Replication.StateTransfers != 0 {
		t.Errorf("rejoin fell back to %d state transfers; want pure WAL catch-up",
			st.Replication.StateTransfers)
	}
	t.Logf("node 2 caught up %d records in %s (epoch %d, lag 0)",
		st.Replication.CatchUpRecords, catchUp, st.Epoch)
	if rb, err := json.Marshal(st.Replication); err == nil {
		t.Logf("node 2 repair counters: %s", rb)
	}
	if res, err := cl.Query(ctx, "SELECT COUNT(*) FROM rejoin"); err == nil {
		t.Logf("surviving-node count: %v (want %d)", res.Rows[0][0], total)
	}

	// The rejoined node answers from its own endpoint, correctly.
	res, err := cl2.Query(ctx, "SELECT COUNT(*) FROM rejoin")
	if err != nil {
		t.Fatalf("query rejoined node: %v", err)
	}
	if got := countValue(res.Rows[0][0]); got != total {
		t.Errorf("rejoined node counts %d rows, want %d", got, total)
	}

	close(stop)
	wg.Wait()
	wmu.Lock()
	nq, nf := queries, len(failures)
	var first error
	if nf > 0 {
		first = failures[0]
	}
	wmu.Unlock()
	if nf > 0 {
		t.Errorf("%d of %d idempotent queries failed during kill/rejoin; first: %v", nf, nq, first)
	}
	if nq < 10 {
		t.Fatalf("only %d queries ran — not enough signal", nq)
	}
	t.Logf("%d queries, %d failures across kill, backlog, and rejoin", nq, nf)

	if out := os.Getenv("CRASH_BENCH_OUT"); out != "" {
		rec := map[string]any{
			"bench":             "rejoin_catch_up",
			"backlog_rows":      backlog,
			"caught_up_records": st.Replication.CatchUpRecords,
			"catch_up_ms":       catchUp.Milliseconds(),
			"epoch":             st.Epoch,
		}
		if b, err := json.Marshal(rec); err == nil {
			f, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err == nil {
				fmt.Fprintln(f, string(b))
				f.Close()
			}
		}
	}
}
