package orchestra

import (
	"context"
	"fmt"
	"time"

	"orchestra/internal/engine"
	"orchestra/internal/obs"
	"orchestra/internal/optimizer"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
)

// TraceSpan is one timed stage of a traced query execution — the nodes
// of Result.Trace's span tree (plan, per-fragment scans, ship
// encode/decode, the final pipeline). Remote spans carry start offsets
// relative to their own fragment's clock.
type TraceSpan = obs.Span

// CacheStats are a cache's cumulative hit/miss/eviction counters (see
// Cluster.CacheStats).
type CacheStats = engine.CacheStats

// RecoveryMode selects the reaction to node failure during a query.
type RecoveryMode = engine.RecoveryMode

// Recovery modes, re-exported from the engine.
const (
	// RecoverFail aborts the query and reports the failure.
	RecoverFail = engine.RecoverFail
	// RecoverRestart terminates and restarts over the remaining nodes.
	RecoverRestart = engine.RecoverRestart
	// RecoverIncremental recomputes only the state lost with the failed
	// node (§V-D), with provenance tracking enabled.
	RecoverIncremental = engine.RecoverIncremental
)

// QueryOptions tunes one query execution.
type QueryOptions struct {
	// Node is the initiator index (default 0).
	Node int
	// Epoch pins the snapshot epoch; 0 means current.
	Epoch Epoch
	// Recovery selects the failure reaction (default RecoverRestart).
	Recovery RecoveryMode
	// Provenance forces provenance tracking even without incremental
	// recovery (to measure its overhead, §VI-E).
	Provenance bool
	// Timeout bounds the execution (default 5 minutes).
	Timeout time.Duration
	// Trace collects a span tree for the execution (Result.Trace):
	// planning, each fragment's scan passes, ship encode/decode, and the
	// final pipeline, with durations and row/byte counts.
	Trace bool

	// columnarResult asks the engine to leave the collected answer
	// columnar (Result.batch) instead of materializing Rows — set by
	// QueryBatches for the serving hand-off.
	columnarResult bool
	// trace is the minted trace when the SQL path starts timing before
	// RunPlan (covering parse/optimize); RunPlan mints its own otherwise.
	trace *obs.Trace
}

// Result is a completed query.
type Result struct {
	// Columns are the output column names (select aliases where given).
	Columns []string
	// Rows is the complete, duplicate-free answer set.
	Rows []tuple.Row
	// Epoch is the snapshot the query executed against.
	Epoch Epoch
	// Phases is 1 + the number of incremental recovery invocations.
	Phases uint32
	// Restarts counts full restarts performed.
	Restarts int
	// Stats aggregates per-node work counters.
	Stats engine.NodeStats
	// PerNode holds each node's counters keyed by node id.
	PerNode map[string]engine.NodeStats
	// Plan is the optimizer's explanation of the executed plan.
	Plan string
	// Cached reports that the result came from the materialized-view cache
	// (same query text at the same epoch; see Cluster.EnableQueryCache).
	Cached bool
	// TraceID and Trace carry the execution's span tree when
	// QueryOptions.Trace was set.
	TraceID string
	Trace   *TraceSpan

	// batch is the columnar answer backing a served result: populated
	// instead of Rows when the query ran with columnarResult, emitted and
	// recycled by QueryBatches.
	batch *tuple.Batch
}

// Query parses, optimizes, and executes a single-block SQL query with
// default options.
func (c *Cluster) Query(src string) (*Result, error) {
	return c.QueryOpts(src, QueryOptions{})
}

// resultBatchRows is the granularity at which QueryBatches hands rows to
// its consumer. The wire layer re-chunks by encoded size, so this only
// bounds how much the emit callback sees at once.
const resultBatchRows = 1024

// QueryBatches executes a query and emits the answer through callbacks
// instead of returning it attached to the Result — the serving path for
// streamed results. start receives the completed query's metadata
// (columns, epoch, plan; no rows) exactly once before the first batch.
// When emitCols is non-nil the engine keeps the collected answer columnar
// end-to-end and hands it over as tuple.Batch column vectors — no
// []tuple.Row is materialized at the initiator; emit serves the fallback
// cases (view-cache hits, provenance-mode and other row-granular
// collections). With emitCols nil everything arrives through emit.
//
// The engine's exactly-once contract requires the complete,
// duplicate-free answer set to exist at the initiator before any row is
// final (restart/incremental recovery may replace partial state, and
// final sort/aggregate/limit operators act on the whole set), so batches
// are drained from that answer under the consumer's backpressure rather
// than produced speculatively mid-query; what this path eliminates is
// the wire-encoded copy of the result and the row materialization in
// between. Emitted rows and batches alias engine memory, must not be
// mutated, and are valid only until QueryBatches returns — the columnar
// slabs are recycled into the engine's arena afterwards.
func (c *Cluster) QueryBatches(src string, opts QueryOptions, start func(*Result) error, emit func(rows []tuple.Row) error, emitCols func(b *tuple.Batch) error) (*Result, error) {
	opts.columnarResult = emitCols != nil
	res, err := c.QueryOpts(src, opts)
	if err != nil {
		return nil, err
	}
	meta := *res
	meta.Rows = nil
	meta.batch = nil
	if res.batch != nil {
		// Installed before any callback so an error exit (a client gone
		// mid-schema) still returns the slab to the arena.
		defer engine.RecycleResultBatch(res.batch)
	}
	if err := start(&meta); err != nil {
		return nil, err
	}
	if res.batch != nil && emitCols != nil {
		if res.batch.N > 0 {
			if err := emitCols(res.batch); err != nil {
				return nil, err
			}
		}
		return &meta, nil
	}
	rows := res.Rows
	for lo := 0; lo < len(rows); lo += resultBatchRows {
		hi := lo + resultBatchRows
		if hi > len(rows) {
			hi = len(rows)
		}
		if err := emit(rows[lo:hi]); err != nil {
			return nil, err
		}
	}
	return &meta, nil
}

// QueryOpts parses, optimizes, and executes a single-block SQL query.
func (c *Cluster) QueryOpts(src string, opts QueryOptions) (*Result, error) {
	if hit, key, views := c.viewLookup(src, opts); views != nil {
		if hit != nil {
			return hit, nil
		}
		opts.Epoch = key.epoch // pin the epoch the cache entry will be keyed by
		res, err := c.queryUncached(src, opts)
		if err != nil {
			return nil, err
		}
		if res.batch != nil && res.Rows == nil {
			// The cache stores rows (hits are served repeatedly, long
			// after the columnar slab is recycled), so a columnar answer
			// materializes here; the batch stays attached for the caller's
			// hand-off.
			res.Rows = res.batch.Rows()
		}
		c.viewStore(key, views, res)
		return res, nil
	}
	return c.queryUncached(src, opts)
}

func (c *Cluster) queryUncached(src string, opts QueryOptions) (*Result, error) {
	if opts.Trace && opts.trace == nil {
		opts.trace = obs.NewTrace(obs.NewTraceID(), "query", c.initiatorID(opts.Node))
	}
	planSpan := opts.trace.Begin("plan")
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, info, err := c.Optimize(q)
	if err != nil {
		return nil, err
	}
	opts.trace.End(planSpan)
	opts.trace.Attach(nil, planSpan)
	res, err := c.RunPlan(plan, opts)
	if err != nil {
		return nil, err
	}
	res.Columns = outputColumns(q, c)
	res.Plan = optimizer.Explain(plan, info)
	return res, nil
}

// initiatorID names a node for trace spans ("" when out of range — the
// range error surfaces in RunPlan).
func (c *Cluster) initiatorID(node int) string {
	if node < 0 || node >= len(c.engines) {
		return ""
	}
	return c.NodeID(node)
}

// Optimize runs the Volcano-style optimizer against the cluster's catalog.
func (c *Cluster) Optimize(q *sql.Query) (*engine.Plan, *optimizer.Info, error) {
	env := optimizer.Environment{Nodes: c.liveNodes()}
	return optimizer.Build(q, c.catalog(), env)
}

// liveNodes counts nodes in the current routing table.
func (c *Cluster) liveNodes() int {
	return c.local.Node(0).Table().Size()
}

// RunPlan executes a (finalized or finalizable) engine plan directly —
// the escape hatch used by benchmarks that hand-build plans.
func (c *Cluster) RunPlan(plan *engine.Plan, opts QueryOptions) (*Result, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Minute
	}
	if opts.Node < 0 || opts.Node >= len(c.engines) {
		return nil, fmt.Errorf("orchestra: no node %d", opts.Node)
	}
	tr := opts.trace
	if tr == nil && opts.Trace {
		tr = obs.NewTrace(obs.NewTraceID(), "query", c.initiatorID(opts.Node))
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	eres, err := c.engines[opts.Node].Run(ctx, plan, engine.Options{
		Provenance:     opts.Provenance,
		Recovery:       opts.Recovery,
		Epoch:          opts.Epoch,
		ColumnarResult: opts.columnarResult,
		Trace:          tr,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Rows:     eres.Rows,
		batch:    eres.Batch,
		Epoch:    eres.Epoch,
		Phases:   eres.Phases,
		Restarts: eres.Restarts,
		Stats:    eres.TotalStats(),
		PerNode:  make(map[string]engine.NodeStats, len(eres.Stats)),
	}
	for id, st := range eres.Stats {
		res.PerNode[string(id)] = st
	}
	if tr != nil {
		tr.Finish()
		res.TraceID = tr.ID.String()
		res.Trace = tr.Root()
	}
	return res, nil
}

// outputColumns derives display names for the result columns.
func outputColumns(q *sql.Query, c *Cluster) []string {
	return q.OutputColumns(func(table string) ([]string, bool) {
		s, ok := c.Schema(table)
		if !ok {
			return nil, false
		}
		return columnNames(s), true
	})
}

// columnNames lists a schema's column names in order.
func columnNames(s *tuple.Schema) []string {
	names := make([]string, len(s.Columns))
	for i, col := range s.Columns {
		names[i] = col.Name
	}
	return names
}
