package orchestra

import (
	"context"
	"fmt"
	"time"

	"orchestra/internal/engine"
	"orchestra/internal/obs"
	"orchestra/internal/optimizer"
	"orchestra/internal/sql"
	"orchestra/internal/tuple"
)

// TraceSpan is one timed stage of a traced query execution — the nodes
// of Result.Trace's span tree (plan, per-fragment scans, ship
// encode/decode, the final pipeline). Remote spans carry start offsets
// relative to their own fragment's clock.
type TraceSpan = obs.Span

// CacheStats are a cache's cumulative hit/miss/eviction counters (see
// Cluster.CacheStats).
type CacheStats = engine.CacheStats

// RecoveryMode selects the reaction to node failure during a query.
type RecoveryMode = engine.RecoveryMode

// Recovery modes, re-exported from the engine.
const (
	// RecoverFail aborts the query and reports the failure.
	RecoverFail = engine.RecoverFail
	// RecoverRestart terminates and restarts over the remaining nodes.
	RecoverRestart = engine.RecoverRestart
	// RecoverIncremental recomputes only the state lost with the failed
	// node (§V-D), with provenance tracking enabled.
	RecoverIncremental = engine.RecoverIncremental
)

// QueryOptions tunes one query execution.
type QueryOptions struct {
	// Node is the initiator index (default 0).
	Node int
	// Epoch pins the snapshot epoch; 0 means current.
	Epoch Epoch
	// Recovery selects the failure reaction (default RecoverRestart).
	Recovery RecoveryMode
	// Provenance forces provenance tracking even without incremental
	// recovery (to measure its overhead, §VI-E).
	Provenance bool
	// Timeout bounds the execution (default 5 minutes).
	Timeout time.Duration
	// Trace collects a span tree for the execution (Result.Trace):
	// planning, each fragment's scan passes, ship encode/decode, and the
	// final pipeline, with durations and row/byte counts.
	Trace bool

	// columnarResult asks the engine to leave the collected answer
	// columnar (Result.batch) instead of materializing Rows — set by
	// QueryBatches for the serving hand-off.
	columnarResult bool
	// trace is the minted trace when the SQL path starts timing before
	// RunPlan (covering parse/optimize); RunPlan mints its own otherwise.
	trace *obs.Trace
	// sink receives result batches during execution for stream-eligible
	// plans — set by QueryBatches when nothing (view cache, provenance)
	// forces the collected path.
	sink engine.StreamSink
}

// Result is a completed query.
type Result struct {
	// Columns are the output column names (select aliases where given).
	Columns []string
	// Rows is the complete, duplicate-free answer set.
	Rows []tuple.Row
	// Epoch is the snapshot the query executed against.
	Epoch Epoch
	// Phases is 1 + the number of incremental recovery invocations.
	Phases uint32
	// Restarts counts full restarts performed.
	Restarts int
	// Stats aggregates per-node work counters.
	Stats engine.NodeStats
	// PerNode holds each node's counters keyed by node id.
	PerNode map[string]engine.NodeStats
	// Plan is the optimizer's explanation of the executed plan.
	Plan string
	// Cached reports that the result came from the materialized-view cache
	// (same query text at the same epoch; see Cluster.EnableQueryCache).
	Cached bool
	// TraceID and Trace carry the execution's span tree when
	// QueryOptions.Trace was set.
	TraceID string
	Trace   *TraceSpan
	// Streamed counts rows emitted through QueryBatches' callbacks during
	// execution; when positive the answer never existed whole at the
	// initiator and Rows stays nil.
	Streamed int64
	// StreamPeak is the high-water mark of result rows buffered at the
	// initiator while streaming (0 for collected executions).
	StreamPeak int

	// batch is the columnar answer backing a served result: populated
	// instead of Rows when the query ran with columnarResult, emitted and
	// recycled by QueryBatches.
	batch *tuple.Batch
}

// Query parses, optimizes, and executes a single-block SQL query with
// default options.
func (c *Cluster) Query(src string) (*Result, error) {
	return c.QueryOpts(src, QueryOptions{})
}

// resultBatchRows is the granularity at which QueryBatches hands rows to
// its consumer. The wire layer re-chunks by encoded size, so this only
// bounds how much the emit callback sees at once.
const resultBatchRows = 1024

// QueryBatches executes a query and emits the answer through callbacks
// instead of returning it attached to the Result — the serving path for
// streamed results. start receives the query's metadata (columns, epoch,
// plan; no rows) exactly once before the first batch. When emitCols is
// non-nil columnar chunks arrive as tuple.Batch column vectors — no
// []tuple.Row is materialized at the initiator; emit serves the
// row-granular cases (view-cache hits, provenance mode, demoting final
// pipelines). With emitCols nil everything arrives through emit.
//
// Plans whose final pipeline is compute/limit-only stream *during*
// execution: chunks reach the callbacks as remote fragments deliver them,
// so the first batch arrives long before the query completes and the
// initiator never holds the whole answer (Result.Streamed counts the
// rows, Result.StreamPeak the buffering high-water mark). Everything else
// — ORDER BY, aggregates, provenance/incremental recovery (restarts may
// retract partial state), and view-cache-enabled clusters (the cache
// stores whole answers) — keeps the collect-then-emit contract: the
// complete, duplicate-free answer set exists at the initiator first and
// is drained under the consumer's backpressure. Emitted rows and batches
// alias engine memory, must not be mutated, and are valid only until the
// callback returns.
func (c *Cluster) QueryBatches(src string, opts QueryOptions, start func(*Result) error, emit func(rows []tuple.Row) error, emitCols func(b *tuple.Batch) error) (*Result, error) {
	opts.columnarResult = emitCols != nil
	if !c.viewsUsable(opts) {
		return c.queryStreamed(src, opts, start, emit, emitCols)
	}
	res, err := c.QueryOpts(src, opts)
	if err != nil {
		return nil, err
	}
	return emitCollected(res, start, emit, emitCols)
}

// viewsUsable mirrors viewLookup's gate without touching the cache's
// hit/miss counters: when it reports true, QueryOpts will consult (and
// possibly fill) the view cache, so QueryBatches must take the collected
// path — cached entries are whole-answer row sets.
func (c *Cluster) viewsUsable(opts QueryOptions) bool {
	c.mu.Lock()
	views := c.views
	c.mu.Unlock()
	return views != nil && !opts.Provenance && opts.Node >= 0 && opts.Node < len(c.engines)
}

// emitCollected hands a collected answer to the QueryBatches callbacks:
// metadata first, then the rows in resultBatchRows chunks (or the whole
// columnar batch at once — the wire layer re-chunks by encoded size).
func emitCollected(res *Result, start func(*Result) error, emit func(rows []tuple.Row) error, emitCols func(b *tuple.Batch) error) (*Result, error) {
	meta := *res
	meta.Rows = nil
	meta.batch = nil
	if res.batch != nil {
		// Installed before any callback so an error exit (a client gone
		// mid-schema) still returns the slab to the arena.
		defer engine.RecycleResultBatch(res.batch)
	}
	if err := start(&meta); err != nil {
		return nil, err
	}
	if res.batch != nil && emitCols != nil {
		if res.batch.N > 0 {
			if err := emitCols(res.batch); err != nil {
				return nil, err
			}
		}
		return &meta, nil
	}
	rows := res.Rows
	for lo := 0; lo < len(rows); lo += resultBatchRows {
		hi := lo + resultBatchRows
		if hi > len(rows) {
			hi = len(rows)
		}
		if err := emit(rows[lo:hi]); err != nil {
			return nil, err
		}
	}
	return &meta, nil
}

// batchEmitSink adapts the QueryBatches callbacks to the engine's
// StreamSink: the start callback fires lazily before the first emission
// (the engine's drainer serializes calls, so no locking). meta is the
// pre-derived metadata start hands over; queryStreamed fills in the
// completion fields afterwards.
type batchEmitSink struct {
	meta     *Result
	start    func(*Result) error
	emit     func(rows []tuple.Row) error
	emitCols func(b *tuple.Batch) error
	started  bool
}

func (s *batchEmitSink) begin() error {
	if s.started {
		return nil
	}
	s.started = true
	return s.start(s.meta)
}

func (s *batchEmitSink) StreamRows(rows []tuple.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if err := s.begin(); err != nil {
		return err
	}
	return s.emit(rows)
}

func (s *batchEmitSink) StreamCols(b *tuple.Batch) error {
	if b.N == 0 {
		return nil
	}
	if err := s.begin(); err != nil {
		return err
	}
	if s.emitCols != nil {
		return s.emitCols(b)
	}
	return s.emit(b.Rows())
}

// queryStreamed is QueryBatches' during-execution path: parse and
// optimize up front so the start callback's metadata (columns, plan,
// epoch) exists before the engine runs, then attach a sink when the plan
// is stream-eligible. Ineligible plans come back collected and are
// emitted the classic way.
func (c *Cluster) queryStreamed(src string, opts QueryOptions, start func(*Result) error, emit func(rows []tuple.Row) error, emitCols func(b *tuple.Batch) error) (*Result, error) {
	if opts.Node < 0 || opts.Node >= len(c.engines) {
		return nil, fmt.Errorf("orchestra: no node %d", opts.Node)
	}
	if opts.Trace && opts.trace == nil {
		opts.trace = obs.NewTrace(obs.NewTraceID(), "query", c.initiatorID(opts.Node))
	}
	planSpan := opts.trace.Begin("plan")
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, info, err := c.Optimize(q)
	if err != nil {
		return nil, err
	}
	opts.trace.End(planSpan)
	opts.trace.Attach(nil, planSpan)
	cols := outputColumns(q, c)
	explain := optimizer.Explain(plan, info)
	var sink *batchEmitSink
	if engine.StreamEligible(plan, engine.Options{Provenance: opts.Provenance, Recovery: opts.Recovery}) {
		if opts.Epoch == 0 {
			// Pin the epoch now: start's metadata must name the snapshot
			// before the engine reports back.
			opts.Epoch = c.currentEpochAt(opts.Node)
		}
		meta := &Result{Columns: cols, Epoch: opts.Epoch, Plan: explain, PerNode: map[string]engine.NodeStats{}}
		if opts.trace != nil {
			meta.TraceID = opts.trace.ID.String()
		}
		sink = &batchEmitSink{meta: meta, start: start, emit: emit, emitCols: emitCols}
		opts.sink = sink
	}
	res, err := c.RunPlan(plan, opts)
	if err != nil {
		return nil, err
	}
	res.Columns = cols
	res.Plan = explain
	if sink == nil {
		return emitCollected(res, start, emit, emitCols)
	}
	// Streamed (possibly an empty answer): finish the handshake if no
	// chunk ever fired it, then fill the completion metadata into the
	// Result the start callback already holds.
	if err := sink.begin(); err != nil {
		return nil, err
	}
	*sink.meta = *res
	return sink.meta, nil
}

// QueryOpts parses, optimizes, and executes a single-block SQL query.
func (c *Cluster) QueryOpts(src string, opts QueryOptions) (*Result, error) {
	if hit, key, views := c.viewLookup(src, opts); views != nil {
		if hit != nil {
			return hit, nil
		}
		opts.Epoch = key.epoch // pin the epoch the cache entry will be keyed by
		res, err := c.queryUncached(src, opts)
		if err != nil {
			return nil, err
		}
		if res.batch != nil && res.Rows == nil {
			// The cache stores rows (hits are served repeatedly, long
			// after the columnar slab is recycled), so a columnar answer
			// materializes here; the batch stays attached for the caller's
			// hand-off.
			res.Rows = res.batch.Rows()
		}
		c.viewStore(key, views, res)
		return res, nil
	}
	return c.queryUncached(src, opts)
}

func (c *Cluster) queryUncached(src string, opts QueryOptions) (*Result, error) {
	if opts.Trace && opts.trace == nil {
		opts.trace = obs.NewTrace(obs.NewTraceID(), "query", c.initiatorID(opts.Node))
	}
	planSpan := opts.trace.Begin("plan")
	q, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	plan, info, err := c.Optimize(q)
	if err != nil {
		return nil, err
	}
	opts.trace.End(planSpan)
	opts.trace.Attach(nil, planSpan)
	res, err := c.RunPlan(plan, opts)
	if err != nil {
		return nil, err
	}
	res.Columns = outputColumns(q, c)
	res.Plan = optimizer.Explain(plan, info)
	return res, nil
}

// initiatorID names a node for trace spans ("" when out of range — the
// range error surfaces in RunPlan).
func (c *Cluster) initiatorID(node int) string {
	if node < 0 || node >= len(c.engines) {
		return ""
	}
	return c.NodeID(node)
}

// Optimize runs the Volcano-style optimizer against the cluster's catalog.
func (c *Cluster) Optimize(q *sql.Query) (*engine.Plan, *optimizer.Info, error) {
	env := optimizer.Environment{Nodes: c.liveNodes()}
	return optimizer.Build(q, c.catalog(), env)
}

// liveNodes counts nodes in the current routing table.
func (c *Cluster) liveNodes() int {
	return c.local.Node(0).Table().Size()
}

// RunPlan executes a (finalized or finalizable) engine plan directly —
// the escape hatch used by benchmarks that hand-build plans.
func (c *Cluster) RunPlan(plan *engine.Plan, opts QueryOptions) (*Result, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Minute
	}
	if opts.Node < 0 || opts.Node >= len(c.engines) {
		return nil, fmt.Errorf("orchestra: no node %d", opts.Node)
	}
	tr := opts.trace
	if tr == nil && opts.Trace {
		tr = obs.NewTrace(obs.NewTraceID(), "query", c.initiatorID(opts.Node))
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	eres, err := c.engines[opts.Node].Run(ctx, plan, engine.Options{
		Provenance:     opts.Provenance,
		Recovery:       opts.Recovery,
		Epoch:          opts.Epoch,
		ColumnarResult: opts.columnarResult,
		Trace:          tr,
		Sink:           opts.sink,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Rows:       eres.Rows,
		batch:      eres.Batch,
		Epoch:      eres.Epoch,
		Phases:     eres.Phases,
		Restarts:   eres.Restarts,
		Stats:      eres.TotalStats(),
		Streamed:   eres.Streamed,
		StreamPeak: eres.StreamPeak,
		PerNode:    make(map[string]engine.NodeStats, len(eres.Stats)),
	}
	for id, st := range eres.Stats {
		res.PerNode[string(id)] = st
	}
	if tr != nil {
		tr.Finish()
		res.TraceID = tr.ID.String()
		res.Trace = tr.Root()
	}
	return res, nil
}

// outputColumns derives display names for the result columns.
func outputColumns(q *sql.Query, c *Cluster) []string {
	return q.OutputColumns(func(table string) ([]string, bool) {
		s, ok := c.Schema(table)
		if !ok {
			return nil, false
		}
		return columnNames(s), true
	})
}

// columnNames lists a schema's column names in order.
func columnNames(s *tuple.Schema) []string {
	names := make([]string, len(s.Columns))
	for i, col := range s.Columns {
		names[i] = col.Name
	}
	return names
}
